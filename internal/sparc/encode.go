// Package sparc is the SPARC V8 port of VCODE: encoders, the core.Backend
// retarget, a disassembler and a cycle-counted simulator.  The port uses
// the "flat" register model (as -mflat compilers do): no register windows,
// explicit callee-saved spills in the prologue — which keeps VCODE's
// register classification meaningful and matches the paper's observation
// that the VCODE model is window-agnostic.  SPARC is big-endian, has one
// branch delay slot, 13-bit immediates, and condition-code-based branches.
package sparc

// Format 3 op3 values (op=2, arithmetic/logic).
const (
	op3Add   = 0x00
	op3And   = 0x01
	op3Or    = 0x02
	op3Xor   = 0x03
	op3Sub   = 0x04
	op3Andn  = 0x05
	op3Xnor  = 0x07
	op3Umul  = 0x0a
	op3Smul  = 0x0b
	op3Udiv  = 0x0e
	op3Sdiv  = 0x0f
	op3AddCC = 0x10
	op3SubCC = 0x14
	op3Sll   = 0x25
	op3Srl   = 0x26
	op3Sra   = 0x27
	op3RdY   = 0x28
	op3WrY   = 0x30
	op3Jmpl  = 0x38
	op3FPop1 = 0x34
	op3FPop2 = 0x35
)

// Format 3 op3 values (op=3, memory).
const (
	op3Ld   = 0x00
	op3Ldub = 0x01
	op3Lduh = 0x02
	op3St   = 0x04
	op3Stb  = 0x05
	op3Sth  = 0x06
	op3Ldsb = 0x09
	op3Ldsh = 0x0a
	op3Ldf  = 0x20
	op3Lddf = 0x23
	op3Stf  = 0x24
	op3Stdf = 0x27
)

// FPop1 opf values.
const (
	opfFmovs  = 0x001
	opfFnegs  = 0x005
	opfFabss  = 0x009
	opfFsqrts = 0x029
	opfFsqrtd = 0x02a
	opfFadds  = 0x041
	opfFaddd  = 0x042
	opfFsubs  = 0x045
	opfFsubd  = 0x046
	opfFmuls  = 0x049
	opfFmuld  = 0x04a
	opfFdivs  = 0x04d
	opfFdivd  = 0x04e
	opfFitos  = 0x0c4
	opfFdtos  = 0x0c6
	opfFitod  = 0x0c8
	opfFstod  = 0x0c9
	opfFstoi  = 0x0d1
	opfFdtoi  = 0x0d2
)

// FPop2 opf values.
const (
	opfFcmps = 0x051
	opfFcmpd = 0x052
)

// Bicc condition codes.
const (
	condN   = 0 // never
	condE   = 1 // equal (Z)
	condLE  = 2 // signed <=
	condL   = 3 // signed <
	condLEU = 4 // unsigned <=
	condCS  = 5 // carry set: unsigned <
	condNE  = 9
	condG   = 10 // signed >
	condGE  = 11 // signed >=
	condGU  = 12 // unsigned >
	condCC  = 13 // carry clear: unsigned >=
	condA   = 8  // always
)

// FBfcc condition codes (subset: ordered comparisons).
const (
	fcondNE = 1
	fcondL  = 4
	fcondG  = 6
	fcondE  = 9
	fcondGE = 11
	fcondLE = 13
)

// fmt3r builds an op=2/3 register-register instruction.
func fmt3r(op, rd, op3, rs1, rs2 uint32) uint32 {
	return op<<30 | rd<<25 | op3<<19 | rs1<<14 | rs2
}

// fmt3i builds an op=2/3 register-immediate instruction (i=1, simm13).
func fmt3i(op, rd, op3, rs1 uint32, simm13 int32) uint32 {
	return op<<30 | rd<<25 | op3<<19 | rs1<<14 | 1<<13 | uint32(simm13)&0x1fff
}

// fmtSethi builds sethi %hi(imm22), rd.
func fmtSethi(rd, imm22 uint32) uint32 {
	return 0<<30 | rd<<25 | 4<<22 | imm22&0x3fffff
}

// fmtBicc builds an integer branch (op2=2); disp22 is patched later.
func fmtBicc(cond uint32, disp22 int32) uint32 {
	return 0<<30 | cond<<25 | 2<<22 | uint32(disp22)&0x3fffff
}

// fmtFBfcc builds an FP branch (op2=6).
func fmtFBfcc(cond uint32, disp22 int32) uint32 {
	return 0<<30 | cond<<25 | 6<<22 | uint32(disp22)&0x3fffff
}

// fmtCall builds the call instruction (op=1, disp30).
func fmtCall(disp30 int32) uint32 {
	return 1<<30 | uint32(disp30)&0x3fffffff
}

// fmtFP builds an FPop instruction.
func fmtFP(op3, rd, opf, rs1, rs2 uint32) uint32 {
	return 2<<30 | rd<<25 | op3<<19 | rs1<<14 | opf<<5 | rs2
}

// encNop is sethi 0, %g0.
const encNop uint32 = 0x01000000

func fitsS13(v int64) bool { return v >= -4096 && v <= 4095 }
