package sparc

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func newMachine() (*Backend, *core.Machine) {
	b := New()
	m := mem.New(1<<24, true)
	return b, core.NewMachine(b, NewCPU(m), m)
}

// TestFlatCalleeSaved checks the flat-model prologue/epilogue: values in
// callee-saved %l registers survive a call.
func TestFlatCalleeSaved(t *testing.T) {
	b, m := newMachine()

	a := core.NewAsm(b)
	a.SetName("clobberer")
	_, err := a.Begin("", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	// Scribble over every caller-saved register.
	for _, r := range b.DefaultConv().CallerSaved {
		a.Seti(r, 0x5a5a)
	}
	a.Retv()
	clobberer, err := a.End()
	if err != nil {
		t.Fatal(err)
	}

	a2 := core.NewAsm(b)
	a2.SetName("keeper")
	args, err := a2.Begin("%i", core.NonLeaf)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := a2.GetReg(core.Var)
	if err != nil {
		t.Fatal(err)
	}
	a2.Movi(kept, args[0])
	a2.StartCall("")
	a2.CallFunc(clobberer)
	a2.Reti(kept)
	keeper, err := a2.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(keeper, core.I(777))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 777 {
		t.Fatalf("callee-saved value lost: got %d", got.Int())
	}
	if keeper.FrameBytes == 0 {
		t.Error("keeper should have a frame")
	}
}

// TestYRegisterDivision checks the wr %y / sdiv protocol for full 32-bit
// operands.
func TestYRegisterDivision(t *testing.T) {
	b, m := newMachine()
	a := core.NewAsm(b)
	args, err := a.Begin("%i%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Divi(args[0], args[0], args[1])
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, y, want int32 }{
		{100, 7, 14},
		{-100, 7, -14},
		{2147483647, 2, 1073741823},
		{-2147483648, 2, -1073741824},
	} {
		got, err := m.Call(fn, core.I(tc.x), core.I(tc.y))
		if err != nil {
			t.Fatal(err)
		}
		if got.Int() != int64(tc.want) {
			t.Errorf("div(%d,%d) = %d, want %d", tc.x, tc.y, got.Int(), tc.want)
		}
	}
}

// TestBigEndianMemory checks byte lane selection on the big-endian
// target.
func TestBigEndianMemory(t *testing.T) {
	b, m := newMachine()
	addr, err := m.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem().Store(addr, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	a := core.NewAsm(b)
	args, err := a.Begin("%p", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Lduci(args[0], args[0], 0) // most significant byte on big-endian
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.P(addr))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 0x11 {
		t.Fatalf("byte 0 = %#x, want 0x11 (big-endian)", got.Int())
	}
}

// TestRetAddrOffset checks SPARC's return-to-%o7+8 convention end to end
// (it is exercised by every call, but pin it explicitly).
func TestRetAddrOffset(t *testing.T) {
	b, _ := newMachine()
	if b.RetAddrOffset() != 8 {
		t.Fatalf("RetAddrOffset = %d", b.RetAddrOffset())
	}
}

// TestDoubleRegisterPairs checks doubles stored in even/odd pairs.
func TestDoubleRegisterPairs(t *testing.T) {
	b, m := newMachine()
	a := core.NewAsm(b)
	args, err := a.Begin("%d%d", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Muld(args[0], args[0], args[1])
	a.Retd(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.D(1.5), core.D(-4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float64() != -6 {
		t.Fatalf("1.5*-4 = %v", got.Float64())
	}
}

// TestDisasm spot-checks the disassembler.
func TestDisasm(t *testing.T) {
	b := New()
	buf := core.NewBuf(8)
	if err := b.ALU(buf, core.OpAdd, core.TypeI, core.GPR(16), core.GPR(8), core.GPR(9)); err != nil {
		t.Fatal(err)
	}
	if s := b.Disasm(buf.At(0), 0); !strings.Contains(s, "add %o0, %o1, %l0") {
		t.Errorf("disasm: %q", s)
	}
	if s := b.Disasm(encNop, 0); s != "nop" {
		t.Errorf("nop: %q", s)
	}
}
