// Package peep implements the VCODE-level peephole optimizer the paper
// leaves as future work (§6.2: "Future work will include implementing a
// vcode-level peephole optimizer for clients that wish to trade runtime
// compilation overhead for better generated code").
//
// Because VCODE generates code in place, an optimizer above it cannot
// rewrite history; instead this layer holds a one-instruction window:
// each incoming instruction may merge with, replace, or cancel the
// pending one before anything reaches the instruction stream.  Only
// transformations that preserve all register and memory state exactly
// are applied, so no liveness information is needed:
//
//   - mov r, r                          -> dropped
//   - add/sub/or/xor/lsh/rsh r, r, #0   -> dropped
//   - set r, #a; set r, #b              -> set r, #b
//   - add r, r, #a; add r, r, #b        -> add r, r, #(a+b)
//   - st T r, [b+o]; ld T r2, [b+o]     -> st T r, [b+o]; mov r2, r
//
// The last rule (store-to-load forwarding) pays off under the
// virtual-register layer, whose spills produce exactly such pairs.
package peep

import "repro/internal/core"

type kind uint8

const (
	kNone kind = iota
	kALU
	kALUI
	kUnary
	kSetI
	kLdI
	kStI
)

type pending struct {
	kind       kind
	op         core.Op
	t          core.Type
	rd, rs, r2 core.Reg
	imm        int64
}

// Asm is the peephole layer over a core.Asm.  Instructions issued through
// it are window-optimized; anything issued directly on the underlying
// Asm must be preceded by Flush.
type Asm struct {
	A *core.Asm

	p pending
	// Saved counts how many instructions the window removed or merged
	// away (for the benchmark's report).
	Saved int
}

// New wraps an assembler.
func New(a *core.Asm) *Asm { return &Asm{A: a} }

// Flush emits any pending instruction.  Call before binding a label,
// branching, calling, or ending the function.
func (p *Asm) Flush() {
	pd := p.p
	p.p = pending{}
	switch pd.kind {
	case kALU:
		p.A.ALU(pd.op, pd.t, pd.rd, pd.rs, pd.r2)
	case kALUI:
		p.A.ALUI(pd.op, pd.t, pd.rd, pd.rs, pd.imm)
	case kUnary:
		p.A.Unary(pd.op, pd.t, pd.rd, pd.rs)
	case kSetI:
		p.A.SetI(pd.t, pd.rd, pd.imm)
	case kLdI:
		p.A.LdI(pd.t, pd.rd, pd.rs, pd.imm)
	case kStI:
		p.A.StI(pd.t, pd.rd, pd.rs, pd.imm)
	}
}

// hold makes n the new pending instruction, flushing the previous one.
func (p *Asm) hold(n pending) {
	p.Flush()
	p.p = n
}

// isDroppableNop reports instructions with no architectural effect.
func isDroppableNop(n pending) bool {
	switch n.kind {
	case kUnary:
		return n.op == core.OpMov && n.rd == n.rs
	case kALUI:
		if n.rd != n.rs || n.imm != 0 {
			return false
		}
		switch n.op {
		case core.OpAdd, core.OpSub, core.OpOr, core.OpXor, core.OpLsh, core.OpRsh:
			return true
		}
	}
	return false
}

// feed runs the window rules on a new instruction.
func (p *Asm) feed(n pending) {
	if isDroppableNop(n) {
		p.Saved++
		return
	}
	pd := &p.p
	switch {
	// set r, #a ; set r, #b  ->  set r, #b
	case pd.kind == kSetI && n.kind == kSetI && pd.t == n.t && pd.rd == n.rd:
		p.Saved++
		*pd = n
		return
	// add r, r, #a ; add r, r, #b  ->  add r, r, #(a+b)
	case pd.kind == kALUI && n.kind == kALUI &&
		pd.op == core.OpAdd && n.op == core.OpAdd && pd.t == n.t &&
		pd.rd == pd.rs && n.rd == n.rs && pd.rd == n.rd:
		pd.imm += n.imm
		p.Saved++
		if pd.imm == 0 {
			p.Saved++
			p.p = pending{}
		}
		return
	// st T r, [b+o] ; ld T r2, [b+o]  ->  st ; mov r2, r
	case pd.kind == kStI && n.kind == kLdI && pd.t == n.t &&
		pd.rs == n.rs && pd.imm == n.imm && pd.rs != pd.rd:
		stored := pd.rd
		p.Flush()
		p.Saved++ // a register move replaces a memory access
		p.feed(pending{kind: kUnary, op: core.OpMov, t: moveType(n.t), rd: n.rd, rs: stored})
		return
	}
	p.hold(n)
}

// moveType maps a memory type onto a legal register-move type.
func moveType(t core.Type) core.Type {
	switch t {
	case core.TypeC, core.TypeUC, core.TypeS, core.TypeUS:
		return core.TypeI
	default:
		return t
	}
}

// --- the instruction interface ---

// ALU queues rd = rs1 op rs2.
func (p *Asm) ALU(op core.Op, t core.Type, rd, rs1, rs2 core.Reg) {
	p.feed(pending{kind: kALU, op: op, t: t, rd: rd, rs: rs1, r2: rs2})
}

// ALUI queues rd = rs op imm.
func (p *Asm) ALUI(op core.Op, t core.Type, rd, rs core.Reg, imm int64) {
	p.feed(pending{kind: kALUI, op: op, t: t, rd: rd, rs: rs, imm: imm})
}

// Unary queues rd = op rs.
func (p *Asm) Unary(op core.Op, t core.Type, rd, rs core.Reg) {
	p.feed(pending{kind: kUnary, op: op, t: t, rd: rd, rs: rs})
}

// SetI queues rd = imm.
func (p *Asm) SetI(t core.Type, rd core.Reg, imm int64) {
	p.feed(pending{kind: kSetI, t: t, rd: rd, imm: imm})
}

// LdI queues rd = *(t*)(base+off).  The store-to-load window only
// matches immediate-offset forms.
func (p *Asm) LdI(t core.Type, rd, base core.Reg, off int64) {
	p.feed(pending{kind: kLdI, t: t, rd: rd, rs: base, imm: off})
}

// StI queues *(t*)(base+off) = rs.
func (p *Asm) StI(t core.Type, rs, base core.Reg, off int64) {
	p.feed(pending{kind: kStI, t: t, rd: rs, rs: base, imm: off})
}

// Br flushes and emits a branch (branches never enter the window).
func (p *Asm) Br(op core.Op, t core.Type, rs1, rs2 core.Reg, l core.Label) {
	p.Flush()
	p.A.Br(op, t, rs1, rs2, l)
}

// BrI flushes and emits an immediate branch.
func (p *Asm) BrI(op core.Op, t core.Type, rs core.Reg, imm int64, l core.Label) {
	p.Flush()
	p.A.BrI(op, t, rs, imm, l)
}

// Ld flushes and emits a register-offset load (only immediate-offset
// loads enter the window).
func (p *Asm) Ld(t core.Type, rd, base, roff core.Reg) {
	p.Flush()
	p.A.Ld(t, rd, base, roff)
}

// St flushes and emits a register-offset store (its address is unknown to
// the window, so ordering with any pending StI must be preserved).
func (p *Asm) St(t core.Type, rs, base, roff core.Reg) {
	p.Flush()
	p.A.St(t, rs, base, roff)
}

// SetF flushes and emits a float constant load.
func (p *Asm) SetF(rd core.Reg, imm float32) {
	p.Flush()
	p.A.SetF(rd, imm)
}

// SetD flushes and emits a double constant load.
func (p *Asm) SetD(rd core.Reg, imm float64) {
	p.Flush()
	p.A.SetD(rd, imm)
}

// Cvt flushes and emits a conversion.
func (p *Asm) Cvt(from, to core.Type, rd, rs core.Reg) {
	p.Flush()
	p.A.Cvt(from, to, rd, rs)
}

// Ext flushes and emits an extension instruction.
func (p *Asm) Ext(name string, t core.Type, rd core.Reg, rs ...core.Reg) {
	p.Flush()
	p.A.Ext(name, t, rd, rs...)
}

// Nop flushes and emits a no-operation.
func (p *Asm) Nop() {
	p.Flush()
	p.A.Nop()
}

// RetVoid flushes and returns.
func (p *Asm) RetVoid() {
	p.Flush()
	p.A.RetVoid()
}

// Bind flushes and binds a label (a label kills the window: something
// may jump here).
func (p *Asm) Bind(l core.Label) {
	p.Flush()
	p.A.Bind(l)
}

// Jmp flushes and jumps.
func (p *Asm) Jmp(l core.Label) {
	p.Flush()
	p.A.Jmp(l)
}

// Ret flushes and returns a value.
func (p *Asm) Ret(t core.Type, rs core.Reg) {
	p.Flush()
	p.A.Ret(t, rs)
}

// End flushes and finishes the function.
func (p *Asm) End() (*core.Func, error) {
	p.Flush()
	return p.A.End()
}
