package peep

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

func newMachine() (*mips.Backend, *core.Machine) {
	b := mips.New()
	m := mem.New(1<<22, false)
	return b, core.NewMachine(b, mips.NewCPU(m), m)
}

// TestRedundantMovesDropped checks mov r,r and no-op immediates vanish
// while semantics hold.
func TestRedundantMovesDropped(t *testing.T) {
	bk, m := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	p := New(a)
	before := a.Buf().Len()
	p.Unary(core.OpMov, core.TypeI, args[0], args[0]) // dropped
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 0)
	p.ALUI(core.OpLsh, core.TypeI, args[0], args[0], 0)
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 5)
	p.Ret(core.TypeI, args[0])
	fn, err := p.End()
	if err != nil {
		t.Fatal(err)
	}
	if p.Saved != 3 {
		t.Errorf("Saved = %d, want 3", p.Saved)
	}
	_ = before
	got, err := m.Call(fn, core.I(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 15 {
		t.Fatalf("got %d", got.Int())
	}
}

// TestAddImmCombining checks consecutive pointer bumps merge.
func TestAddImmCombining(t *testing.T) {
	bk, m := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	p := New(a)
	start := a.Buf().Len()
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 4)
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 8)
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], -2)
	p.Flush()
	emitted := a.Buf().Len() - start
	if emitted != 1 {
		t.Errorf("combined adds emitted %d words, want 1", emitted)
	}
	p.Ret(core.TypeI, args[0])
	fn, err := p.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.I(100))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 110 {
		t.Fatalf("got %d", got.Int())
	}
}

// TestAddImmCancellation checks a +k/-k pair disappears entirely.
func TestAddImmCancellation(t *testing.T) {
	bk, _ := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	p := New(a)
	start := a.Buf().Len()
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 16)
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], -16)
	p.Flush()
	if got := a.Buf().Len() - start; got != 0 {
		t.Errorf("cancelling adds emitted %d words", got)
	}
}

// TestStoreLoadForwarding checks the spill/reload pattern becomes a move.
func TestStoreLoadForwarding(t *testing.T) {
	bk, m := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%p%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	p := New(a)
	start := a.Buf().Len()
	p.StI(core.TypeI, args[1], args[0], 8)
	p.LdI(core.TypeI, r, args[0], 8)
	p.ALUI(core.OpAdd, core.TypeI, r, r, 1)
	p.Ret(core.TypeI, r)
	fn, err := p.End()
	if err != nil {
		t.Fatal(err)
	}
	// Expect st + move + addiu (+ret), not st + lw + addiu.
	words := a.Buf().Len() - start
	_ = words
	if p.Saved < 1 {
		t.Errorf("forwarding did not trigger (Saved=%d)", p.Saved)
	}
	addr, err := m.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.P(addr), core.I(41))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Fatalf("got %d", got.Int())
	}
	// The store must still have happened.
	v, err := m.Mem().Load(addr+8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 41 {
		t.Fatalf("memory = %d, want 41", v)
	}
}

// TestFullInterface drives every instruction form through the window in
// a real loop and checks semantics end to end.
func TestFullInterface(t *testing.T) {
	bk, m := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%p%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	p := New(a)
	// sum of mem[0..n): set, branches, loads, ALU, jmp all through the
	// window.
	p.SetI(core.TypeI, acc, 0)
	top := a.NewLabel()
	done := a.NewLabel()
	p.Bind(top)
	p.BrI(core.OpBle, core.TypeI, args[1], 0, done)
	p.LdI(core.TypeI, w, args[0], 0)
	p.ALU(core.OpAdd, core.TypeI, acc, acc, w)
	p.ALUI(core.OpAdd, core.TypeP, args[0], args[0], 4)
	p.ALUI(core.OpSub, core.TypeI, args[1], args[1], 1)
	p.Unary(core.OpMov, core.TypeI, w, acc) // harmless extra
	p.Jmp(top)
	p.Bind(done)
	skip := a.NewLabel()
	p.Br(core.OpBeq, core.TypeI, acc, acc, skip) // always taken: jumps to the next instruction
	p.Bind(skip)
	p.Ret(core.TypeI, acc)
	fn, err := p.End()
	if err != nil {
		t.Fatal(err)
	}
	addr, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := m.Mem().Store(addr+uint64(4*i), 4, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Call(fn, core.P(addr), core.I(8))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 36 {
		t.Fatalf("sum = %d, want 36", got.Int())
	}
}

// TestWindowFlushedAtLabels checks control flow kills the window (no
// merging across a label).
func TestWindowFlushedAtLabels(t *testing.T) {
	bk, m := newMachine()
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	p := New(a)
	l := a.NewLabel()
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 1)
	p.Bind(l) // the +1 must be emitted before the label
	p.ALUI(core.OpAdd, core.TypeI, args[0], args[0], 2)
	p.Ret(core.TypeI, args[0])
	fn, err := p.End()
	if err != nil {
		t.Fatal(err)
	}
	if p.Saved != 0 {
		t.Errorf("merged across a label (Saved=%d)", p.Saved)
	}
	got, err := m.Call(fn, core.I(0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 3 {
		t.Fatalf("got %d", got.Int())
	}
}
