package core

import "testing"

func TestBufBasics(t *testing.T) {
	b := NewBuf(4)
	if b.Len() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	for i := uint32(0); i < 10; i++ {
		b.Emit(i * 100)
	}
	if b.Len() != 10 || b.At(3) != 300 {
		t.Fatalf("emit/At wrong: len=%d at3=%d", b.Len(), b.At(3))
	}
	b.Set(3, 42)
	if b.At(3) != 42 {
		t.Fatal("Set failed")
	}
	b.Truncate(5)
	if b.Len() != 5 {
		t.Fatal("Truncate failed")
	}
	if len(b.Words()) != 5 {
		t.Fatal("Words length wrong")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRotate(t *testing.T) {
	w := []uint32{1, 2, 3, 4, 5}
	rotate(w, 2) // left-rotate by 2
	want := []uint32{3, 4, 5, 1, 2}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("rotate: %v, want %v", w, want)
		}
	}
	one := []uint32{7}
	rotate(one, 0)
	if one[0] != 7 {
		t.Fatal("rotate by 0 changed data")
	}
}
