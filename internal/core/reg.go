package core

import "fmt"

// Reg names a physical machine register in the target's own numbering.
// Values 0..63 are general-purpose (integer) registers; fprBase..fprBase+63
// are floating-point registers.  VCODE registers are client-managed: they
// are handed out by the Asm register allocator (GetReg/PutReg), named
// architecture-independently (T, S, FT, FS), or referenced directly by
// clients that know the target.
type Reg int16

const fprBase = 64

// NoReg is the invalid register value.
const NoReg Reg = -1

// GPR returns the integer register numbered n in the target's numbering.
func GPR(n int) Reg { return Reg(n) }

// FPR returns the floating-point register numbered n.
func FPR(n int) Reg { return Reg(fprBase + n) }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= fprBase }

// Num returns the register's number within its bank.
func (r Reg) Num() int {
	if r.IsFP() {
		return int(r - fprBase)
	}
	return int(r)
}

// Valid reports whether r names a register at all.
func (r Reg) Valid() bool { return r >= 0 && r < 2*fprBase }

func (r Reg) String() string {
	switch {
	case !r.Valid():
		return "r?"
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Num())
	default:
		return fmt.Sprintf("r%d", r.Num())
	}
}

// RegClass is the VCODE register classification used by the allocator.
type RegClass uint8

const (
	// Temp registers are not preserved across procedure calls
	// (caller-saved).
	Temp RegClass = iota
	// Var registers are persistent across procedure calls
	// (callee-saved).
	Var
	// Unavail marks a register the allocator must never hand out (used
	// with Asm.SetRegClass to retarget conventions on the fly, e.g. in
	// interrupt handlers).
	Unavail
)

func (c RegClass) String() string {
	switch c {
	case Temp:
		return "temp"
	case Var:
		return "var"
	case Unavail:
		return "unavail"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}
