package core

import (
	"errors"
	"fmt"
)

// Sentinel errors reported by the assembler.  The first error encountered
// while emitting sticks to the Asm and is returned from End, so straight-
// line client code need not check every instruction (mirroring the paper's
// macro interface, which had no per-instruction error channel at all).
var (
	// ErrRegExhausted is returned by GetReg when the machine's registers
	// are gone; clients are then responsible for keeping variables on
	// the stack (paper §3.2).
	ErrRegExhausted = errors.New("vcode: register allocator exhausted")
	// ErrLeafCall is reported when a function declared Leaf tries to
	// emit a call.
	ErrLeafCall = errors.New("vcode: call emitted in function declared leaf")
	// ErrBadType is reported when an operation is applied to a type it
	// does not support.
	ErrBadType = errors.New("vcode: invalid type for operation")
	// ErrBadReg is reported when an operand register is invalid or of
	// the wrong bank for the instruction.
	ErrBadReg = errors.New("vcode: invalid register operand")
	// ErrUnboundLabel is reported at End when a referenced label was
	// never bound.
	ErrUnboundLabel = errors.New("vcode: unbound label")
	// ErrBranchRange is reported when a branch displacement does not fit
	// the target's encoding.
	ErrBranchRange = errors.New("vcode: branch displacement out of range")
	// ErrState is reported when the Asm lifecycle is misused (emitting
	// before Begin or after End, ending twice, ...).
	ErrState = errors.New("vcode: assembler used in wrong state")
	// ErrNoHardReg is the "register assertion" failure: the target does
	// not provide the hard-coded register the client demanded (§5.3).
	ErrNoHardReg = errors.New("vcode: hard-coded register not available on this target")
	// ErrDelaySlot is reported when ScheduleDelay is given an
	// instruction that cannot occupy a delay slot.
	ErrDelaySlot = errors.New("vcode: instruction cannot be scheduled into delay slot")
	// ErrUnknownExt is reported when an extension instruction name has
	// no registered definition.
	ErrUnknownExt = errors.New("vcode: unknown extension instruction")
	// ErrFuelExhausted is reported by Call/CallWith when generated code
	// runs past its step budget (CallOpts.Fuel, or the machine-wide
	// MaxSteps backstop).
	ErrFuelExhausted = errors.New("vcode: fuel exhausted")
)

// TrapPanicError reports that a runtime-helper trap handler panicked
// during a call.  The sandbox recovers the panic so a faulty helper
// surfaces as an error from Call instead of unwinding the host process.
type TrapPanicError struct {
	Sym   string // the trap's symbol name
	PC    uint64 // the trap vector address
	Value any    // the recovered panic value
}

func (e *TrapPanicError) Error() string {
	return fmt.Sprintf("vcode: trap handler %q at %#x panicked: %v", e.Sym, e.PC, e.Value)
}

// PanicError reports a panic recovered from the simulator itself — the
// last line of defense; simulators are expected to return typed errors on
// any input.
type PanicError struct {
	PC    uint64
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("vcode: simulator panicked at pc %#x: %v", e.PC, e.Value)
}
