package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/verify"
)

// fakeBackend is a minimal backend for exercising the Asm lifecycle
// without a real target; emission produces recognizable words.
type fakeBackend struct{ conv *CallConv }

func newFake() *fakeBackend {
	g := GPR
	return &fakeBackend{conv: &CallConv{
		IntArgs:       []Reg{g(4), g(5), g(6), g(7)},
		FPArgs:        []Reg{FPR(12)},
		RetInt:        g(2),
		RetFP:         FPR(0),
		RA:            g(31),
		SP:            g(29),
		Zero:          g(0),
		CallerSaved:   []Reg{g(8), g(9), g(10), g(7), g(6), g(5), g(4)},
		CalleeSaved:   []Reg{g(16), g(17), g(18)},
		CallerSavedFP: []Reg{FPR(4), FPR(6)},
		CalleeSavedFP: []Reg{FPR(20)},
		StackAlign:    8,
		SlotBytes:     4,
		HardTemp:      []Reg{g(8), g(9)},
		HardVar:       []Reg{g(16), g(17), g(18)},
	}}
}

func (f *fakeBackend) Name() string           { return "fake" }
func (f *fakeBackend) PtrBytes() int          { return 4 }
func (f *fakeBackend) RegFile() *RegFile      { return &RegFile{NumGPR: 32, NumFPR: 32} }
func (f *fakeBackend) DefaultConv() *CallConv { return f.conv }
func (f *fakeBackend) BranchDelaySlots() int  { return 1 }
func (f *fakeBackend) LoadDelay() int         { return 1 }
func (f *fakeBackend) BigEndian() bool        { return false }
func (f *fakeBackend) ScratchReg() Reg        { return GPR(1) }
func (f *fakeBackend) ScratchFPR() Reg        { return FPR(30) }
func (f *fakeBackend) RetAddrOffset() int     { return 0 }

func (f *fakeBackend) ALU(b *Buf, op Op, t Type, rd, rs1, rs2 Reg) error {
	b.Emit(0x10000000 | uint32(op))
	return nil
}

func (f *fakeBackend) ALUImm(b *Buf, op Op, t Type, rd, rs Reg, imm int64) error {
	b.Emit(0x11000000 | uint32(op))
	return nil
}

func (f *fakeBackend) Unary(b *Buf, op Op, t Type, rd, rs Reg) error {
	b.Emit(0x12000000 | uint32(op))
	return nil
}

func (f *fakeBackend) SetImm(b *Buf, t Type, rd Reg, imm int64) error {
	b.Emit(0x13000000)
	return nil
}

func (f *fakeBackend) Cvt(b *Buf, from, to Type, rd, rs Reg) error {
	b.Emit(0x14000000)
	return nil
}

func (f *fakeBackend) Load(b *Buf, t Type, rd, base Reg, off int64) error {
	b.Emit(0x15000000)
	return nil
}

func (f *fakeBackend) LoadRR(b *Buf, t Type, rd, base, idx Reg) error {
	b.Emit(0x15100000)
	return nil
}

func (f *fakeBackend) Store(b *Buf, t Type, rs, base Reg, off int64) error {
	b.Emit(0x16000000)
	return nil
}

func (f *fakeBackend) StoreRR(b *Buf, t Type, rs, base, idx Reg) error {
	b.Emit(0x16100000)
	return nil
}

func (f *fakeBackend) Branch(b *Buf, op Op, t Type, rs1, rs2 Reg) (int, error) {
	site := b.Len()
	b.Emit(0x17000000)
	b.Emit(0) // delay nop
	return site, nil
}

func (f *fakeBackend) BranchImm(b *Buf, op Op, t Type, rs Reg, imm int64) (int, error) {
	site := b.Len()
	b.Emit(0x17100000)
	b.Emit(0)
	return site, nil
}

func (f *fakeBackend) Jump(b *Buf) (int, error) {
	site := b.Len()
	b.Emit(0x18000000)
	b.Emit(0)
	return site, nil
}

func (f *fakeBackend) JumpReg(b *Buf, r Reg) error {
	b.Emit(0x18100000)
	b.Emit(0)
	return nil
}

func (f *fakeBackend) CallSite(b *Buf) ([]int, error) {
	site := b.Len()
	b.Emit(0x19000000)
	b.Emit(0)
	return []int{site}, nil
}

func (f *fakeBackend) CallLabel(b *Buf) (int, error) {
	site := b.Len()
	b.Emit(0x19100000)
	b.Emit(0)
	return site, nil
}

func (f *fakeBackend) CallReg(b *Buf, r Reg) error {
	b.Emit(0x19200000)
	b.Emit(0)
	return nil
}

func (f *fakeBackend) PatchBranch(b *Buf, site, target int) error {
	disp := target - (site + 1)
	if disp < -(1<<15) || disp >= 1<<15 {
		return ErrBranchRange
	}
	b.Set(site, b.At(site)&^uint32(0xffff)|uint32(uint16(disp)))
	return nil
}

func (f *fakeBackend) PatchCall(b *Buf, sites []int, base, target uint64) error { return nil }

func (f *fakeBackend) LoadAddr(b *Buf, rd Reg) ([]int, error) {
	s := b.Len()
	b.Emit(0x1a000000)
	b.Emit(0x1a100000)
	return []int{s, s + 1}, nil
}

func (f *fakeBackend) PatchAddr(b *Buf, sites []int, addr uint64) error { return nil }

func (f *fakeBackend) PatchMemOffset(b *Buf, site int, off int64) error {
	b.Set(site, b.At(site)&^uint32(0xffff)|uint32(uint16(off)))
	return nil
}

func (f *fakeBackend) Nop(b *Buf)          { b.Emit(0) }
func (f *fakeBackend) IsNop(w uint32) bool { return w == 0 }

func (f *fakeBackend) RetEncoding(conv *CallConv) uint32 { return 0x1b000000 }

func (f *fakeBackend) MaxPrologueWords(conv *CallConv) int {
	return 2 + len(conv.CalleeSaved) + len(conv.CalleeSavedFP)
}

func (f *fakeBackend) Prologue(b *Buf, at int, conv *CallConv, fr *Frame) (int, error) {
	used := 1
	if fr.SaveRA {
		used++
	}
	used += len(fr.SavedGPR) + len(fr.SavedFPR)
	start := at + f.MaxPrologueWords(conv) - used
	for i := 0; i < used; i++ {
		b.Set(start+i, 0x1c000000)
	}
	return used, nil
}

func (f *fakeBackend) Epilogue(b *Buf, conv *CallConv, fr *Frame) error {
	b.Emit(0x1d000000)
	b.Emit(0x1b000000)
	return nil
}

func (f *fakeBackend) EmulatedOp(op Op, t Type) (string, bool) { return "", false }

func (f *fakeBackend) TryExt(b *Buf, name string, t Type, rd Reg, rs []Reg) (bool, error) {
	return false, nil
}

func (f *fakeBackend) Disasm(w uint32, pc uint64) string { return "?" }

func (f *fakeBackend) Classify(w uint32, pc uint64) verify.Insn {
	return verify.Insn{Kind: verify.KindOther}
}

// --- tests ---

func TestParseSig(t *testing.T) {
	cases := []struct {
		in   string
		want []Type
		ok   bool
	}{
		{"", nil, true},
		{"%v", nil, true},
		{"%i", []Type{TypeI}, true},
		{"%i%p%d", []Type{TypeI, TypeP, TypeD}, true},
		{"%ul%f", []Type{TypeUL, TypeF}, true},
		{"i", nil, false},
		{"%z", nil, false},
	}
	for _, c := range cases {
		got, err := ParseSig(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseSig(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseSig(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSig(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestTypeProperties(t *testing.T) {
	if !TypeI.IsSigned() || TypeU.IsSigned() || TypeD.IsSigned() {
		t.Error("signedness wrong")
	}
	if !TypeF.IsFloat() || TypeP.IsFloat() {
		t.Error("floatness wrong")
	}
	if TypeL.Size(4) != 4 || TypeL.Size(8) != 8 || TypeD.Size(4) != 8 || TypeC.Size(8) != 1 {
		t.Error("sizes wrong")
	}
	if !TypeS.IsSubWord() || TypeI.IsSubWord() {
		t.Error("subword wrong")
	}
	if TypeUL.Letter() != "ul" || TypeUL.CName() != "unsigned long" {
		t.Error("names wrong")
	}
}

func TestLifecycleErrors(t *testing.T) {
	a := NewAsm(newFake())
	// Emission before Begin sticks an error.
	a.Addii(GPR(8), GPR(8), 1)
	if a.Err() == nil {
		t.Fatal("emission before Begin should record an error")
	}
	if _, err := a.End(); !errors.Is(err, ErrState) {
		t.Fatalf("End before Begin: %v", err)
	}
	// A fresh Begin clears the slate.
	if _, err := a.Begin("%i", Leaf); err != nil {
		t.Fatal(err)
	}
	if a.Err() != nil {
		t.Fatal("Begin should reset the sticky error")
	}
	// Begin while building is rejected.
	if _, err := a.Begin("%i", Leaf); !errors.Is(err, ErrState) {
		t.Fatalf("nested Begin: %v", err)
	}
}

func TestUnboundLabel(t *testing.T) {
	a := NewAsm(newFake())
	args, _ := a.Begin("%i", Leaf)
	l := a.NewLabel()
	a.Bltii(args[0], 3, l)
	a.Reti(args[0])
	if _, err := a.End(); !errors.Is(err, ErrUnboundLabel) {
		t.Fatalf("End with unbound label: %v", err)
	}
}

func TestDoubleBind(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("%i", Leaf)
	l := a.NewLabel()
	a.Bind(l)
	a.Bind(l)
	if a.Err() == nil {
		t.Fatal("double bind should error")
	}
}

func TestLeafCallRejected(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("%i", Leaf)
	a.StartCall("%i")
	if !errors.Is(a.Err(), ErrLeafCall) {
		t.Fatalf("call in leaf: %v", a.Err())
	}
}

func TestBadTypeRejected(t *testing.T) {
	a := NewAsm(newFake())
	args, _ := a.Begin("%i%f", Leaf)
	// and on floats is illegal.
	a.ALU(OpAnd, TypeF, args[1], args[1], args[1])
	if !errors.Is(a.Err(), ErrBadType) {
		t.Fatalf("andf: %v", a.Err())
	}
}

func TestRegBankMismatch(t *testing.T) {
	a := NewAsm(newFake())
	args, _ := a.Begin("%i", Leaf)
	a.Addd(args[0], args[0], args[0]) // int reg used as double
	if !errors.Is(a.Err(), ErrBadReg) {
		t.Fatalf("bank mismatch: %v", a.Err())
	}
}

func TestRegAllocExhaustion(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("", Leaf)
	// Fake backend: 7 caller-saved + 3 callee-saved available.
	var got []Reg
	for {
		r, err := a.GetReg(Temp)
		if err != nil {
			if !errors.Is(err, ErrRegExhausted) {
				t.Fatalf("unexpected alloc error: %v", err)
			}
			break
		}
		got = append(got, r)
	}
	if len(got) != 10 {
		t.Fatalf("allocated %d registers, want 10", len(got))
	}
	// Freeing one makes it available again.
	a.PutReg(got[3])
	r, err := a.GetReg(Temp)
	if err != nil || r != got[3] {
		t.Fatalf("PutReg/GetReg roundtrip: %v %v", r, err)
	}
}

func TestLeafVarPrefersCallerSaved(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("", Leaf)
	r, err := a.GetReg(Var)
	if err != nil {
		t.Fatal(err)
	}
	if containsReg(a.Conv().CalleeSaved, r) {
		t.Errorf("leaf Var allocation took callee-saved %v first", r)
	}
	fn, err := func() (*Func, error) { a.Reti(r); return a.End() }()
	if err != nil {
		t.Fatal(err)
	}
	if fn.FrameBytes != 0 {
		t.Errorf("leaf using caller-saved for Var got a frame (%d bytes)", fn.FrameBytes)
	}
}

func TestNonLeafVarIsSaved(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("", NonLeaf)
	r, err := a.GetReg(Var)
	if err != nil {
		t.Fatal(err)
	}
	if !containsReg(a.Conv().CalleeSaved, r) {
		t.Fatalf("non-leaf Var allocation returned caller-saved %v", r)
	}
	a.Reti(r)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	if fn.FrameBytes == 0 {
		t.Error("callee-saved use should force a frame")
	}
}

func TestHardRegAssertion(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("", Leaf)
	if r := a.T(0); !r.Valid() {
		t.Fatal("T(0) should exist")
	}
	if r := a.T(99); r != NoReg {
		t.Fatal("T(99) should fail")
	}
	if !errors.Is(a.Err(), ErrNoHardReg) {
		t.Fatalf("hard-reg assertion: %v", a.Err())
	}
}

func TestLocalsAligned(t *testing.T) {
	a := NewAsm(newFake())
	_, _ = a.Begin("", Leaf)
	o1 := a.Local(TypeC)
	o2 := a.Local(TypeD)
	o3 := a.Local(TypeI)
	if o2%8 != 0 {
		t.Errorf("double local at %d not 8-aligned", o2)
	}
	if o3%4 != 0 {
		t.Errorf("int local at %d not 4-aligned", o3)
	}
	if !(o1 < o2 && o2 < o3) {
		t.Errorf("locals not ascending: %d %d %d", o1, o2, o3)
	}
}

func TestEntryOffsetSkipsUnusedPrologue(t *testing.T) {
	bk := newFake()
	a := NewAsm(bk)
	args, _ := a.Begin("%i", Leaf)
	a.Addii(args[0], args[0], 1)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	if fn.Entry != bk.MaxPrologueWords(bk.DefaultConv()) {
		t.Errorf("leaf entry = %d, want %d", fn.Entry, bk.MaxPrologueWords(bk.DefaultConv()))
	}
	// Direct-return rewriting: no jump word should remain.
	for i := fn.Entry; i < len(fn.Words); i++ {
		if fn.Words[i]&0xff000000 == 0x18000000 {
			t.Errorf("unpatched epilogue jump at %d", i)
		}
	}
}

func TestConvSetClass(t *testing.T) {
	conv := newFake().DefaultConv().Clone()
	r := conv.CallerSaved[0]
	if err := conv.SetClass(r, Var); err != nil {
		t.Fatal(err)
	}
	if conv.ClassOf(r) != Var {
		t.Errorf("reclassified register is %v", conv.ClassOf(r))
	}
	if err := conv.SetClass(conv.SP, Temp); err == nil {
		t.Error("reclassifying SP should fail")
	}
	conv.AllCalleeSaved()
	if len(conv.CallerSaved) != 0 {
		t.Error("AllCalleeSaved left caller-saved registers")
	}
}

func TestSaveLayoutStable(t *testing.T) {
	conv := newFake().DefaultConv()
	lay := NewSaveLayout(conv, 4)
	if lay.RAOff() != 0 {
		t.Error("RA should be slot 0")
	}
	off := lay.GPROff(conv.CalleeSaved[1])
	if off != 8 {
		t.Errorf("second callee-saved at %d, want 8", off)
	}
	if lay.GPROff(GPR(9)) != -1 {
		t.Error("caller-saved register should have no slot")
	}
	if lay.FPROff(conv.CalleeSavedFP[0])%8 != 0 {
		t.Error("FP slot not 8-aligned")
	}
	if lay.Bytes()%8 != 0 {
		t.Error("save area not 8-aligned")
	}
}

func TestValueRoundtrips(t *testing.T) {
	if I(-5).Int() != -5 || U(0xffffffff).Uint() != 0xffffffff {
		t.Error("int wrap")
	}
	if F(1.5).Float32() != 1.5 || D(-2.25).Float64() != -2.25 {
		t.Error("float wrap")
	}
	if L(-1).Int() != -1 || UL(1<<40).Uint() != 1<<40 {
		t.Error("long wrap")
	}
	if !strings.Contains(I(7).String(), "7:i") {
		t.Errorf("String: %s", I(7))
	}
}

func TestInsnCount(t *testing.T) {
	a := NewAsm(newFake())
	args, _ := a.Begin("%i", Leaf)
	a.Addii(args[0], args[0], 1)
	a.Addii(args[0], args[0], 2)
	a.Reti(args[0])
	if a.InsnCount() != 3 {
		t.Errorf("InsnCount = %d, want 3", a.InsnCount())
	}
}
