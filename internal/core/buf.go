package core

// Buf is the in-place code stream: a flat sequence of 32-bit machine
// instruction words.  All three supported targets (MIPS, SPARC, Alpha) use
// fixed 32-bit instruction encodings, so the buffer is word-addressed.
// Emission is a bounds-check plus an append; there is no intermediate
// structure of any kind.
type Buf struct {
	w []uint32
}

// NewBuf returns a buffer with capacity for n instructions preallocated.
func NewBuf(n int) *Buf { return &Buf{w: make([]uint32, 0, n)} }

// Emit appends one instruction word.
func (b *Buf) Emit(x uint32) { b.w = append(b.w, x) }

// Len returns the number of instruction words emitted so far.
func (b *Buf) Len() int { return len(b.w) }

// At returns the word at instruction index i.
func (b *Buf) At(i int) uint32 { return b.w[i] }

// Set overwrites the word at instruction index i (used for backpatching).
func (b *Buf) Set(i int, x uint32) { b.w[i] = x }

// Truncate discards all words at index n and beyond.
func (b *Buf) Truncate(n int) { b.w = b.w[:n] }

// Words returns the underlying word slice (not a copy).
func (b *Buf) Words() []uint32 { return b.w }

// Reset empties the buffer, retaining capacity.
func (b *Buf) Reset() { b.w = b.w[:0] }
