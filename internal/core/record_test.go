package core

import "testing"

// buildRecorded emits a small function with branches, a loop, locals,
// mid-body temp allocation, and memory traffic — the shapes the superblock
// rewriter has to replay — and returns the function plus its recording.
func buildRecorded(t *testing.T, a *Asm) (*Func, *Recording) {
	t.Helper()
	a.Record(true)
	a.SetName("rec_rt")
	args, err := a.Begin("%i%p", Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	n, base := args[0], args[1]
	sum, err := a.GetReg(Var)
	if err != nil {
		t.Fatalf("GetReg: %v", err)
	}
	i, err := a.GetReg(Var)
	if err != nil {
		t.Fatalf("GetReg: %v", err)
	}
	slot := a.Local(TypeI)
	a.SetI(TypeI, sum, 0)
	a.SetI(TypeI, i, 0)
	loop, done := a.NewLabel(), a.NewLabel()
	a.Bind(loop)
	a.Br(OpBge, TypeI, i, n, done)
	tmp, err := a.GetReg(Temp)
	if err != nil {
		t.Fatalf("GetReg: %v", err)
	}
	a.LdI(TypeI, tmp, base, 0)
	a.ALU(OpAdd, TypeI, sum, sum, tmp)
	a.PutReg(tmp)
	a.StLocal(TypeI, sum, slot)
	a.LdLocal(TypeI, sum, slot)
	a.ALUI(OpAdd, TypeI, i, i, 1)
	a.Jmp(loop)
	a.Bind(done)
	a.Nop()
	a.Ret(TypeI, sum)
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	rec := a.TakeRecording()
	if rec == nil {
		t.Fatal("no recording")
	}
	return fn, rec
}

// TestRecordReplayRoundTrip verifies the foundational invariant: replaying
// a recording's allocation history and then its instruction events in
// original order reproduces the function word for word.
func TestRecordReplayRoundTrip(t *testing.T) {
	a := NewAsm(newFake())
	fn, rec := buildRecorded(t, a)
	if ok, why := rec.Eligible(); !ok {
		t.Fatalf("recording ineligible: %s", why)
	}

	b := NewAsm(newFake())
	b.SetName(rec.Name)
	if _, err := b.BeginFromRecording(rec); err != nil {
		t.Fatalf("BeginFromRecording: %v", err)
	}
	labels := map[Label]Label{}
	mapLabel := func(l Label) Label {
		if m, ok := labels[l]; ok {
			return m
		}
		m := b.NewLabel()
		labels[l] = m
		return m
	}
	for _, ev := range rec.Events {
		if ev.Kind.IsAlloc() {
			continue
		}
		b.Replay(ev, mapLabel)
	}
	fn2, err := b.End()
	if err != nil {
		t.Fatalf("replay End: %v", err)
	}

	if len(fn.Words) != len(fn2.Words) {
		t.Fatalf("word count: original %d, replay %d", len(fn.Words), len(fn2.Words))
	}
	for i := range fn.Words {
		if fn.Words[i] != fn2.Words[i] {
			t.Fatalf("word %d: original %#x, replay %#x", i, fn.Words[i], fn2.Words[i])
		}
	}
	if fn.Entry != fn2.Entry || fn.FrameBytes != fn2.FrameBytes || fn.Result != fn2.Result {
		t.Fatalf("metadata mismatch: entry %d/%d frame %d/%d result %v/%v",
			fn.Entry, fn2.Entry, fn.FrameBytes, fn2.FrameBytes, fn.Result, fn2.Result)
	}
}

// TestRecordUnsupported verifies that functions beyond the replay
// guarantee say so instead of replaying wrong.
func TestRecordUnsupported(t *testing.T) {
	a := NewAsm(newFake())
	a.Record(true)
	args, err := a.Begin("%i", NonLeaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	a.StartCall("%i")
	a.SetArg(0, args[0])
	a.CallSym("helper")
	a.RetVoid()
	if _, err := a.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	rec := a.TakeRecording()
	if ok, _ := rec.Eligible(); ok {
		t.Fatal("recording with a call claims to be replayable")
	}
	if _, err := NewAsm(newFake()).BeginFromRecording(rec); err == nil {
		t.Fatal("BeginFromRecording accepted an ineligible recording")
	}
}

// TestRecordDetached verifies recordings don't leak across builds on a
// pooled assembler.
func TestRecordDetached(t *testing.T) {
	a := NewAsm(newFake())
	_, rec := buildRecorded(t, a)
	n := len(rec.Events)

	// A second build must start a fresh recording, not append.
	if _, err := a.Begin("%i", Leaf); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	a.RetVoid()
	if _, err := a.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	rec2 := a.TakeRecording()
	if len(rec.Events) != n {
		t.Fatal("first recording mutated by second build")
	}
	if rec2 == nil || len(rec2.Events) != 1 {
		t.Fatalf("second recording wrong: %+v", rec2)
	}

	// Disarmed: no recording.
	a.Record(false)
	if _, err := a.Begin("%i", Leaf); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	a.RetVoid()
	if _, err := a.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	if a.TakeRecording() != nil {
		t.Fatal("recording produced while disarmed")
	}
}
