package core

// regAlloc is the VCODE register allocator (paper §3.2).  The client
// declares a class with each request; candidates are considered in the
// priority order declared by the calling convention.  The allocator is
// intentionally limited in scope: once the machine's registers are
// exhausted it returns ErrRegExhausted and the client keeps values on the
// stack.  Within that scope it works hard: unused argument registers are
// allocatable, leaf procedures satisfy persistent requests from
// caller-saved registers (which survive, as a leaf makes no calls), and
// caller-saved registers stand in for callee-saved ones and vice versa.
type regAlloc struct {
	conv  *CallConv
	taken [2 * fprBase]bool
	leaf  bool
}

func newRegAlloc(conv *CallConv, leaf bool) *regAlloc {
	return &regAlloc{conv: conv, leaf: leaf}
}

// reserve marks r in use without classifying it (argument registers,
// hard-coded names).
func (ra *regAlloc) reserve(r Reg) {
	if r.Valid() {
		ra.taken[r] = true
	}
}

func (ra *regAlloc) free(r Reg) {
	if r.Valid() {
		ra.taken[r] = false
	}
}

func (ra *regAlloc) firstFree(cands []Reg) Reg {
	for _, r := range cands {
		if !ra.taken[r] {
			return r
		}
	}
	return NoReg
}

// get allocates a register of the requested class from the requested bank.
// needsSave reports whether the granted register is callee-saved and must
// therefore appear in the frame's save list.
func (ra *regAlloc) get(class RegClass, fp bool) (r Reg, needsSave bool) {
	caller, callee := ra.conv.CallerSaved, ra.conv.CalleeSaved
	if fp {
		caller, callee = ra.conv.CallerSavedFP, ra.conv.CalleeSavedFP
	}
	var order [2][]Reg
	switch {
	case class == Temp:
		// Prefer caller-saved; fall back to callee-saved (which then
		// must be preserved for our own caller).
		order = [2][]Reg{caller, callee}
	case class == Var && ra.leaf:
		// In a leaf, caller-saved registers survive for free; prefer
		// them to avoid save/restore traffic.
		order = [2][]Reg{caller, callee}
	default:
		order = [2][]Reg{callee, nil}
	}
	for _, cands := range order {
		if r := ra.firstFree(cands); r != NoReg {
			ra.taken[r] = true
			return r, containsReg(callee, r)
		}
	}
	return NoReg, false
}
