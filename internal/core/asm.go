package core

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Label names a code position for branches and jumps.  Labels are created
// with NewLabel (v_genlabel) and bound to the current position with Bind
// (v_label); forward references are backpatched when the label is bound or
// at End.
type Label int32

type asmState uint8

const (
	stIdle asmState = iota
	stBuilding
	stEnded
)

type fixup struct {
	site  int
	label Label
}

type poolEntry struct {
	bits   uint64
	double bool
}

type poolRef struct {
	sites []int
	entry int
}

type pendingArgLoad struct {
	site     int
	stackOff int64
}

type retSite struct {
	// moveIdx is the index of the move-to-return-register instruction
	// (or -1 for void returns); jmpIdx is the jump-to-epilogue site.
	moveIdx int
	jmpIdx  int
}

type callState struct {
	locs       []argLoc
	stackBytes int64
}

// Asm generates one function at a time, in place.  Create it once per
// backend with NewAsm (or NewAsmConv to substitute a calling convention),
// then for each function call Begin, emit instructions, and call End.
//
// Error handling is sticky: the first error encountered is recorded and
// every subsequent emission becomes a no-op; End reports it.  This mirrors
// the paper's macro interface, which straight-line client code could use
// without per-instruction checks.
type Asm struct {
	backend Backend
	conv    *CallConv
	buf     *Buf
	err     error
	state   asmState
	name    string

	labels []int
	fixups []fixup

	frame       Frame
	prologueCap int
	saveLayout  SaveLayout

	params   []Type
	argRegs  []Reg
	inStack  int64
	pending  []pendingArgLoad
	retSites []retSite
	result   Type

	ra *regAlloc

	pool     []poolEntry
	poolRefs []poolRef
	relocs   []Reloc

	call *callState

	insnCount int
	exts      map[string]*ExtDef

	// emitStart stamps Begin when telemetry or tracing is enabled (zero
	// otherwise); tstats caches the per-backend instrument handles.  With
	// both off the only emission-path cost is one atomic load in Begin
	// and one in End — nothing per instruction.
	emitStart time.Time
	tstats    *telemetry.CodegenStats
	// flow is the lifecycle span ID for the function under construction,
	// assigned at Begin when tracing is on so front ends (jit.Compile)
	// can hang regalloc/compile spans on it before End produces the Func.
	flow uint64

	// rec accumulates the portable-emission recording when armed with
	// Record (see record.go); recPause suppresses capture inside internal
	// synthesis sequences whose portable event was already recorded.
	recOn    bool
	rec      *Recording
	recPause int
}

// TraceFlow returns the lifecycle span ID of the function currently being
// built (0 when tracing is off or no build is active).
func (a *Asm) TraceFlow() uint64 { return a.flow }

// NewAsm returns an assembler for the target's default conventions.
func NewAsm(b Backend) *Asm { return NewAsmConv(b, b.DefaultConv()) }

// NewAsmConv returns an assembler using a client-supplied calling
// convention (obtain one with DefaultConv().Clone() and adjust register
// classes as needed).
func NewAsmConv(b Backend, conv *CallConv) *Asm {
	return &Asm{
		backend: b,
		conv:    conv,
		buf:     NewBuf(256),
	}
}

// Backend returns the target port this assembler emits for.
func (a *Asm) Backend() Backend { return a.backend }

// Conv returns the calling convention in effect.
func (a *Asm) Conv() *CallConv { return a.conv }

// Buf exposes the underlying code buffer (tests, disassembly).
func (a *Asm) Buf() *Buf { return a.buf }

// SetName sets the diagnostic name of the function being built.
func (a *Asm) SetName(name string) { a.name = name }

// Err returns the sticky error, if any.
func (a *Asm) Err() error { return a.err }

// InsnCount returns the number of VCODE instructions specified so far in
// the current function.
func (a *Asm) InsnCount() int { return a.insnCount }

func (a *Asm) setErr(err error) {
	if a.err == nil && err != nil {
		a.err = err
	}
}

func (a *Asm) failf(format string, args ...any) {
	a.setErr(fmt.Errorf(format, args...))
}

func (a *Asm) ready() bool {
	if a.err != nil {
		return false
	}
	if a.state != stBuilding {
		a.setErr(fmt.Errorf("%w: emission outside Begin/End", ErrState))
		return false
	}
	return true
}

// Leaf and NonLeaf are the v_lambda leaf-procedure flags.
const (
	Leaf    = true
	NonLeaf = false
)

// Begin starts generation of a new function (v_lambda).  sig is a type
// string such as "%i%p" listing the incoming parameter types (sub-word
// types are not allowed; C's default promotions apply).  leaf declares
// that the function will make no calls, enabling the leaf optimizations;
// emitting a call in a leaf function is an error.  Begin returns the
// registers holding the parameters; parameters arriving on the stack are
// copied into allocated registers, as in the paper.
func (a *Asm) Begin(sig string, leaf bool) ([]Reg, error) {
	params, err := ParseSig(sig)
	if err != nil {
		return nil, err
	}
	return a.BeginTypes(params, leaf)
}

// BeginTypes is Begin with an explicit parameter type list.
func (a *Asm) BeginTypes(params []Type, leaf bool) ([]Reg, error) {
	if a.state == stBuilding {
		return nil, fmt.Errorf("%w: Begin while already building", ErrState)
	}
	for _, t := range params {
		if t.IsSubWord() || t == TypeV {
			return nil, fmt.Errorf("%w: parameter type %s", ErrBadType, t)
		}
	}
	a.emitStart = time.Time{}
	a.flow = 0
	if telemetry.Enabled() {
		if a.tstats == nil {
			a.tstats = telemetry.ForBackend(a.backend.Name())
		}
		a.emitStart = time.Now()
	}
	if trace.Enabled() {
		a.flow = trace.NextFlow()
		if a.emitStart.IsZero() {
			a.emitStart = time.Now()
		}
	}
	a.buf.Reset()
	a.err = nil
	a.state = stBuilding
	a.rec = nil
	if a.recOn {
		a.rec = &Recording{Params: append([]Type(nil), params...), Leaf: leaf}
	}
	a.labels = a.labels[:0]
	a.fixups = a.fixups[:0]
	a.pending = a.pending[:0]
	a.retSites = a.retSites[:0]
	a.pool = a.pool[:0]
	a.poolRefs = a.poolRefs[:0]
	a.relocs = a.relocs[:0]
	a.call = nil
	a.insnCount = 0
	a.result = TypeV
	a.params = append(a.params[:0], params...)
	a.saveLayout = NewSaveLayout(a.conv, a.backend.PtrBytes())
	a.frame = Frame{Leaf: leaf, SaveAreaBytes: a.saveLayout.Bytes()}
	a.ra = newRegAlloc(a.conv, leaf)

	// Reserve the prologue region; the real prologue is written into its
	// tail at End and the entry point set past any unused words.
	a.prologueCap = a.backend.MaxPrologueWords(a.conv)
	for i := 0; i < a.prologueCap; i++ {
		a.backend.Nop(a.buf)
	}

	// Locate incoming parameters.
	locs, stackBytes := a.conv.layoutArgs(params, nil)
	a.inStack = stackBytes
	a.argRegs = a.argRegs[:0]
	for _, loc := range locs {
		if loc.reg != NoReg {
			a.ra.reserve(loc.reg)
			a.argRegs = append(a.argRegs, loc.reg)
			continue
		}
		// Stack-passed: copy into an allocated register now; the load
		// offset depends on the final frame size, so leave a
		// placeholder displacement and patch it at End.
		r, save := a.ra.get(Temp, loc.t.IsFloat())
		if r == NoReg {
			a.setErr(ErrRegExhausted)
			r = a.backend.ScratchReg()
		}
		if save {
			a.noteSaved(r)
		}
		site := a.buf.Len()
		if err := a.backend.Load(a.buf, loc.t, r, a.conv.SP, 0); err != nil {
			a.setErr(err)
		}
		a.pending = append(a.pending, pendingArgLoad{site: site, stackOff: loc.stackOff})
		a.argRegs = append(a.argRegs, r)
	}
	if a.err != nil {
		return nil, a.err
	}
	if a.rec != nil {
		a.rec.Args = append([]Reg(nil), a.argRegs...)
	}
	return a.argRegs, nil
}

func (a *Asm) noteSaved(r Reg) {
	if r.IsFP() {
		if !containsReg(a.frame.SavedFPR, r) {
			a.frame.SavedFPR = append(a.frame.SavedFPR, r)
		}
		return
	}
	if !containsReg(a.frame.SavedGPR, r) {
		a.frame.SavedGPR = append(a.frame.SavedGPR, r)
	}
}

func (a *Asm) needFrame() bool {
	return a.frame.SaveRA || a.frame.LocalBytes > 0 ||
		len(a.frame.SavedGPR) > 0 || len(a.frame.SavedFPR) > 0
}

// End finishes the function (v_end): it writes the real prologue and
// epilogue, backpatches branches and the jump-to-epilogue returns
// (rewriting them into direct returns when no epilogue is needed), lays
// down the floating-point constant pool, and returns the linked function.
func (a *Asm) End() (*Func, error) {
	if a.state != stBuilding {
		return nil, fmt.Errorf("%w: End without Begin", ErrState)
	}
	a.state = stEnded
	if a.err != nil {
		return nil, a.err
	}

	need := a.needFrame()
	if need {
		align := int64(a.conv.StackAlign)
		size := a.frame.SaveAreaBytes + a.frame.LocalBytes
		if align > 0 {
			size = (size + align - 1) &^ (align - 1)
		}
		a.frame.Size = size
	}

	// Returns: either a shared epilogue or rewritten direct returns.
	if need {
		epi := a.buf.Len()
		if err := a.backend.Epilogue(a.buf, a.conv, &a.frame); err != nil {
			return nil, err
		}
		for _, rs := range a.retSites {
			if err := a.backend.PatchBranch(a.buf, rs.jmpIdx, epi); err != nil {
				return nil, err
			}
		}
	} else {
		retWord := a.backend.RetEncoding(a.conv)
		for _, rs := range a.retSites {
			// Swap the preceding result move into the jump's position
			// so it lands in the delay slot of the return (producing
			// the paper's "j ra; move v0,a0" shape) — but only when
			// nothing targets the move.
			if rs.moveIdx >= 0 && rs.jmpIdx == rs.moveIdx+1 &&
				a.backend.BranchDelaySlots() == 1 && !a.anyTargets(rs.moveIdx, rs.jmpIdx+1) {
				mv := a.buf.At(rs.moveIdx)
				a.buf.Set(rs.moveIdx, retWord)
				a.buf.Set(rs.jmpIdx, mv)
			} else {
				a.buf.Set(rs.jmpIdx, retWord)
			}
		}
	}

	// Incoming stack-argument loads now know the frame size.
	for _, p := range a.pending {
		if err := a.backend.PatchMemOffset(a.buf, p.site, a.frame.Size+p.stackOff); err != nil {
			return nil, err
		}
	}

	// Resolve remaining forward references.
	for _, f := range a.fixups {
		t := a.labels[f.label]
		if t < 0 {
			return nil, fmt.Errorf("%w: label L%d", ErrUnboundLabel, f.label)
		}
		if err := a.backend.PatchBranch(a.buf, f.site, t); err != nil {
			return nil, err
		}
	}

	// Write the prologue into the tail of its reserved region.
	entry := a.prologueCap
	if need {
		used, err := a.backend.Prologue(a.buf, 0, a.conv, &a.frame)
		if err != nil {
			return nil, err
		}
		entry = a.prologueCap - used
	}

	// Constant pool: 8-byte entries after the code.
	poolStart := a.buf.Len()
	if len(a.pool) > 0 {
		if a.buf.Len()%2 != 0 {
			a.backend.Nop(a.buf)
		}
		poolStart = a.buf.Len()
		for _, e := range a.pool {
			lo, hi := uint32(e.bits), uint32(e.bits>>32)
			if !e.double {
				lo, hi = uint32(e.bits), 0
			}
			if a.backend.BigEndian() && e.double {
				a.buf.Emit(hi)
				a.buf.Emit(lo)
			} else {
				a.buf.Emit(lo)
				a.buf.Emit(hi)
			}
		}
	}

	if a.rec != nil {
		a.rec.Name = a.name
	}
	fn := &Func{
		Name:          a.name,
		BackendName:   a.backend.Name(),
		Words:         append([]uint32(nil), a.buf.Words()...),
		Entry:         entry,
		Params:        append([]Type(nil), a.params...),
		Result:        a.result,
		StackArgBytes: a.inStack,
		FrameBytes:    a.frame.Size,
		NumInsns:      a.insnCount,
		PoolStart:     poolStart,
	}
	fn.Relocs = append(fn.Relocs, a.relocs...)
	for _, pr := range a.poolRefs {
		fn.Relocs = append(fn.Relocs, Reloc{
			Kind:   RelocAddr,
			Sites:  append([]int(nil), pr.sites...),
			Target: fn,
			Addend: int64(4 * (poolStart + 2*pr.entry)),
		})
	}
	fn.flow = a.flow
	if !a.emitStart.IsZero() {
		d := time.Since(a.emitStart)
		if telemetry.Enabled() && a.tstats != nil {
			a.tstats.EmitNS.Observe(uint64(d))
			a.tstats.Insns.Add(uint64(a.insnCount))
			a.tstats.Funcs.Inc()
			telemetry.TraceRecord(telemetry.PhaseEmit, a.backend.Name(), a.name, d, int64(a.insnCount))
		}
		if trace.Enabled() {
			trace.Record(trace.KindEmit, a.backend.Name(), a.name, fn.lifecycleFlow(),
				a.emitStart, d, trace.Attrs{N: int64(a.insnCount), Bytes: int64(fn.SizeBytes())})
		}
	}
	return fn, nil
}

// anyTargets reports whether any bound label or unresolved fixup targets an
// instruction index in [lo, hi).
func (a *Asm) anyTargets(lo, hi int) bool {
	for _, t := range a.labels {
		if t >= lo && t < hi {
			return true
		}
	}
	return false
}

// ---- Labels ----

// NewLabel allocates a fresh, unbound label (v_genlabel).
func (a *Asm) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

// Bind binds l to the current code position (v_label).
func (a *Asm) Bind(l Label) {
	if !a.ready() {
		return
	}
	if int(l) >= len(a.labels) {
		a.failf("%w: Bind of unknown label L%d", ErrBadReg, l)
		return
	}
	if a.labels[l] >= 0 {
		a.failf("vcode: label L%d bound twice", l)
		return
	}
	a.labels[l] = a.buf.Len()
	a.record(RecEvent{Kind: RecBind, Label: l})
}

func (a *Asm) refLabel(site int, l Label) {
	if int(l) >= len(a.labels) || l < 0 {
		a.failf("%w: reference to unknown label L%d", ErrUnboundLabel, l)
		return
	}
	// All branches are patched at End (even backward ones), so that
	// ScheduleDelay's code motion can never leave a stale displacement.
	a.fixups = append(a.fixups, fixup{site: site, label: l})
}

// ---- Register allocation ----

// GetReg allocates an integer register of the given class (v_getreg).
func (a *Asm) GetReg(class RegClass) (Reg, error) { return a.getReg(class, false) }

// GetFReg allocates a floating-point register of the given class.
func (a *Asm) GetFReg(class RegClass) (Reg, error) { return a.getReg(class, true) }

func (a *Asm) getReg(class RegClass, fp bool) (Reg, error) {
	if a.state != stBuilding {
		return NoReg, ErrState
	}
	r, save := a.ra.get(class, fp)
	if r == NoReg {
		return NoReg, ErrRegExhausted
	}
	if save {
		a.noteSaved(r)
	}
	a.record(RecEvent{Kind: RecGetReg, Rd: r, Class: class, FP: fp})
	return r, nil
}

// PutReg returns an allocated register to the free pool (v_putreg).
func (a *Asm) PutReg(r Reg) {
	if a.ra != nil {
		a.ra.free(r)
		a.record(RecEvent{Kind: RecPutReg, Rd: r})
	}
}

// T returns the n'th hard-coded temporary register name (§5.3).  The
// request is a register assertion: if the target has no such register the
// sticky error ErrNoHardReg is recorded and clients can select different
// code to generate.
func (a *Asm) T(n int) Reg { return a.hard(a.conv.HardTemp, n, false) }

// S returns the n'th hard-coded callee-saved register name.
func (a *Asm) S(n int) Reg { return a.hard(a.conv.HardVar, n, true) }

// FT returns the n'th hard-coded FP temporary register name.
func (a *Asm) FT(n int) Reg { return a.hard(a.conv.HardTempFP, n, false) }

// FS returns the n'th hard-coded FP callee-saved register name.
func (a *Asm) FS(n int) Reg { return a.hard(a.conv.HardVarFP, n, true) }

func (a *Asm) hard(bank []Reg, n int, save bool) Reg {
	if n < 0 || n >= len(bank) {
		a.setErr(fmt.Errorf("%w: index %d of %d", ErrNoHardReg, n, len(bank)))
		return NoReg
	}
	r := bank[n]
	if a.ra != nil {
		a.ra.reserve(r)
	}
	if save && a.state == stBuilding {
		a.noteSaved(r)
	}
	cl := Temp
	if save {
		cl = Var
	}
	a.record(RecEvent{Kind: RecHardReg, Rd: r, Class: cl})
	return r
}

// ---- Locals ----

// Local allocates a stack slot of type t in the activation record
// (v_local) and returns its SP-relative byte offset, valid for the whole
// function.  Locals sit above the fixed worst-case register save area, so
// the offset is final the moment it is handed out.
func (a *Asm) Local(t Type) int64 {
	if !a.ready() {
		return 0
	}
	sz := int64(t.Size(a.backend.PtrBytes()))
	if sz == 0 {
		a.failf("%w: local of type %s", ErrBadType, t)
		return 0
	}
	a.frame.LocalBytes = (a.frame.LocalBytes + sz - 1) &^ (sz - 1)
	off := a.frame.SaveAreaBytes + a.frame.LocalBytes
	a.frame.LocalBytes += sz
	a.record(RecEvent{Kind: RecLocal, T: t, Imm: off})
	return off
}

// LocalBytesInUse returns the bytes of locals allocated so far.
func (a *Asm) LocalBytesInUse() int64 { return a.frame.LocalBytes }

// SP returns the stack pointer register, for addressing locals.
func (a *Asm) SP() Reg { return a.conv.SP }

// LdLocal loads a local allocated at off into rd.
func (a *Asm) LdLocal(t Type, rd Reg, off int64) { a.LdI(t, rd, a.conv.SP, off) }

// StLocal stores rs into the local allocated at off.
func (a *Asm) StLocal(t Type, rs Reg, off int64) { a.StI(t, rs, a.conv.SP, off) }

// ---- Generic emitters (the per-instruction methods in
// instructions_gen.go delegate here; clients generating code from their
// own tables may call these directly, as tcc does). ----

func (a *Asm) checkRegs(t Type, regs ...Reg) bool {
	for _, r := range regs {
		if !r.Valid() {
			a.failf("%w: %v", ErrBadReg, r)
			return false
		}
		if r.IsFP() != t.IsFloat() {
			a.failf("%w: %v used as %s operand", ErrBadReg, r, t)
			return false
		}
	}
	return true
}

// ALU emits the binary operation rd = rs1 op rs2.
func (a *Asm) ALU(op Op, t Type, rd, rs1, rs2 Reg) {
	if !a.ready() {
		return
	}
	if !aluTypeOK(op, t) {
		a.failf("%w: %s%s", ErrBadType, op, t.Letter())
		return
	}
	if !a.checkRegs(t, rd, rs1, rs2) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecALU, Op: op, T: t, Rd: rd, Rs1: rs1, Rs2: rs2})
	if sym, ok := a.backend.EmulatedOp(op, t); ok {
		a.emulCall(sym, rd, rs1, rs2, 0, false)
		return
	}
	a.setErr(a.backend.ALU(a.buf, op, t, rd, rs1, rs2))
}

// ALUI emits rd = rs op imm.
func (a *Asm) ALUI(op Op, t Type, rd, rs Reg, imm int64) {
	if !a.ready() {
		return
	}
	if !aluTypeOK(op, t) || t.IsFloat() {
		a.failf("%w: %s%si", ErrBadType, op, t.Letter())
		return
	}
	if !a.checkRegs(t, rd, rs) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecALUI, Op: op, T: t, Rd: rd, Rs1: rs, Imm: imm})
	if sym, ok := a.backend.EmulatedOp(op, t); ok {
		a.emulCall(sym, rd, rs, NoReg, imm, true)
		return
	}
	a.setErr(a.backend.ALUImm(a.buf, op, t, rd, rs, imm))
}

// Unary emits rd = op rs (com, not, mov, neg).
func (a *Asm) Unary(op Op, t Type, rd, rs Reg) {
	if !a.ready() {
		return
	}
	if !unaryTypeOK(op, t) || op == OpSet {
		a.failf("%w: %s%s", ErrBadType, op, t.Letter())
		return
	}
	if !a.checkRegs(t, rd, rs) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecUnary, Op: op, T: t, Rd: rd, Rs1: rs})
	a.setErr(a.backend.Unary(a.buf, op, t, rd, rs))
}

// SetI emits rd = imm for an integer or pointer type (v_set*i).
func (a *Asm) SetI(t Type, rd Reg, imm int64) {
	if !a.ready() {
		return
	}
	if t.IsFloat() || !unaryTypeOK(OpSet, t) {
		a.failf("%w: set%si", ErrBadType, t.Letter())
		return
	}
	if !a.checkRegs(t, rd) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecSetI, T: t, Rd: rd, Imm: imm})
	a.setErr(a.backend.SetImm(a.buf, t, rd, imm))
}

// SetF emits rd = imm for TypeF via the per-function constant pool.
func (a *Asm) SetF(rd Reg, imm float32) {
	a.setFloat(TypeF, rd, f32bits(imm), false)
	a.record(RecEvent{Kind: RecSetF, T: TypeF, Rd: rd, F: float64(imm)})
}

// SetD emits rd = imm for TypeD via the per-function constant pool.
func (a *Asm) SetD(rd Reg, imm float64) {
	a.setFloat(TypeD, rd, f64bits(imm), true)
	a.record(RecEvent{Kind: RecSetD, T: TypeD, Rd: rd, F: imm})
}

func (a *Asm) setFloat(t Type, rd Reg, bits uint64, double bool) {
	if !a.ready() {
		return
	}
	if !a.checkRegs(t, rd) {
		return
	}
	a.insnCount++
	a.loadPool(t, rd, bits, double)
}

// loadPool emits a load of a pooled constant into rd (the pool lives at
// the end of the function's instruction stream, per §5.2, so the space is
// reclaimed with the function).
func (a *Asm) loadPool(t Type, rd Reg, bits uint64, double bool) {
	entry := -1
	for i, e := range a.pool {
		if e.bits == bits && e.double == double {
			entry = i
			break
		}
	}
	if entry < 0 {
		a.pool = append(a.pool, poolEntry{bits: bits, double: double})
		entry = len(a.pool) - 1
	}
	scratch := a.backend.ScratchReg()
	sites, err := a.backend.LoadAddr(a.buf, scratch)
	if err != nil {
		a.setErr(err)
		return
	}
	a.poolRefs = append(a.poolRefs, poolRef{sites: sites, entry: entry})
	a.setErr(a.backend.Load(a.buf, t, rd, scratch, 0))
}

// Ld emits rd = *(t*)(base + roff) with a register offset.
func (a *Asm) Ld(t Type, rd, base, roff Reg) {
	if !a.ready() {
		return
	}
	if !memTypeOK(t) {
		a.failf("%w: ld%s", ErrBadType, t.Letter())
		return
	}
	if !a.checkRegs(t, rd) || !a.checkRegs(TypeP, base, roff) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecLd, T: t, Rd: rd, Rs1: base, Rs2: roff})
	a.setErr(a.backend.LoadRR(a.buf, t, rd, base, roff))
}

// LdI emits rd = *(t*)(base + off) with an immediate offset.
func (a *Asm) LdI(t Type, rd, base Reg, off int64) {
	if !a.ready() {
		return
	}
	if !memTypeOK(t) {
		a.failf("%w: ld%si", ErrBadType, t.Letter())
		return
	}
	if !a.checkRegs(t, rd) || !a.checkRegs(TypeP, base) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecLdI, T: t, Rd: rd, Rs1: base, Imm: off})
	a.setErr(a.backend.Load(a.buf, t, rd, base, off))
}

// St emits *(t*)(base + roff) = rs.
func (a *Asm) St(t Type, rs, base, roff Reg) {
	if !a.ready() {
		return
	}
	if !memTypeOK(t) {
		a.failf("%w: st%s", ErrBadType, t.Letter())
		return
	}
	if !a.checkRegs(t, rs) || !a.checkRegs(TypeP, base, roff) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecSt, T: t, Rd: rs, Rs1: base, Rs2: roff})
	a.setErr(a.backend.StoreRR(a.buf, t, rs, base, roff))
}

// StI emits *(t*)(base + off) = rs.
func (a *Asm) StI(t Type, rs, base Reg, off int64) {
	if !a.ready() {
		return
	}
	if !memTypeOK(t) {
		a.failf("%w: st%si", ErrBadType, t.Letter())
		return
	}
	if !a.checkRegs(t, rs) || !a.checkRegs(TypeP, base) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecStI, T: t, Rd: rs, Rs1: base, Imm: off})
	a.setErr(a.backend.Store(a.buf, t, rs, base, off))
}

// Br emits a conditional branch to l comparing rs1 and rs2.
func (a *Asm) Br(op Op, t Type, rs1, rs2 Reg, l Label) {
	if !a.ready() {
		return
	}
	if !branchTypeOK(op, t) {
		a.failf("%w: %s%s", ErrBadType, op, t.Letter())
		return
	}
	if !a.checkRegs(t, rs1, rs2) {
		return
	}
	a.insnCount++
	site, err := a.backend.Branch(a.buf, op, t, rs1, rs2)
	if err != nil {
		a.setErr(err)
		return
	}
	a.refLabel(site, l)
	a.record(RecEvent{Kind: RecBr, Op: op, T: t, Rs1: rs1, Rs2: rs2, Label: l, Site: site})
}

// BrI emits a conditional branch to l comparing rs against an immediate.
func (a *Asm) BrI(op Op, t Type, rs Reg, imm int64, l Label) {
	if !a.ready() {
		return
	}
	if !branchTypeOK(op, t) || t.IsFloat() {
		a.failf("%w: %s%si", ErrBadType, op, t.Letter())
		return
	}
	if !a.checkRegs(t, rs) {
		return
	}
	a.insnCount++
	site, err := a.backend.BranchImm(a.buf, op, t, rs, imm)
	if err != nil {
		a.setErr(err)
		return
	}
	a.refLabel(site, l)
	a.record(RecEvent{Kind: RecBrI, Op: op, T: t, Rs1: rs, Imm: imm, Label: l, Site: site})
}

// Jmp emits an unconditional jump to l (v_jv with a label target).
func (a *Asm) Jmp(l Label) {
	if !a.ready() {
		return
	}
	a.insnCount++
	site, err := a.backend.Jump(a.buf)
	if err != nil {
		a.setErr(err)
		return
	}
	a.refLabel(site, l)
	a.record(RecEvent{Kind: RecJmp, Label: l, Site: site})
}

// JmpReg emits an unconditional jump through register r.
func (a *Asm) JmpReg(r Reg) {
	if !a.ready() {
		return
	}
	if !a.checkRegs(TypeP, r) {
		return
	}
	a.recordUnsupported("indirect jump")
	a.insnCount++
	a.setErr(a.backend.JumpReg(a.buf, r))
}

// Nop emits a no-operation.
func (a *Asm) Nop() {
	if !a.ready() {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecNop})
	a.backend.Nop(a.buf)
}

// Ret emits a typed return of rs (v_ret*).  The epilogue jump is elided at
// End when the finished function needs no epilogue.
func (a *Asm) Ret(t Type, rs Reg) {
	if !a.ready() {
		return
	}
	if !unaryTypeOK(OpMov, t) {
		a.failf("%w: ret%s", ErrBadType, t.Letter())
		return
	}
	if !a.checkRegs(t, rs) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecRet, T: t, Rs1: rs})
	a.result = t
	ret := a.conv.RetInt
	if t.IsFloat() {
		ret = a.conv.RetFP
	}
	moveIdx := -1
	if rs != ret {
		moveIdx = a.buf.Len()
		if err := a.backend.Unary(a.buf, OpMov, t, ret, rs); err != nil {
			a.setErr(err)
			return
		}
		// A multi-word move can't swap into a delay slot.
		if a.buf.Len() != moveIdx+1 {
			moveIdx = -1
		}
	}
	a.emitRetJump(moveIdx)
}

// RetVoid emits a return with no value (v_retv).
func (a *Asm) RetVoid() {
	if !a.ready() {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecRetVoid})
	a.emitRetJump(-1)
}

func (a *Asm) emitRetJump(moveIdx int) {
	site, err := a.backend.Jump(a.buf)
	if err != nil {
		a.setErr(err)
		return
	}
	a.retSites = append(a.retSites, retSite{moveIdx: moveIdx, jmpIdx: site})
}

// ---- Conversions ----

// Cvt emits rd = (to)rs (the v_cv*2* family).  Signed-integer/float and
// integer/integer conversions map directly onto the target;
// unsigned-integer-to-float conversions are synthesized portably from core
// instructions.
func (a *Asm) Cvt(from, to Type, rd, rs Reg) {
	if !a.ready() {
		return
	}
	if from == to || from.IsSubWord() || to.IsSubWord() || from == TypeV || to == TypeV {
		a.failf("%w: cv%s2%s", ErrBadType, from.Letter(), to.Letter())
		return
	}
	if !a.checkRegs(from, rs) || !a.checkRegs(to, rd) {
		return
	}
	a.insnCount++
	a.record(RecEvent{Kind: RecCvt, T: from, T2: to, Rd: rd, Rs1: rs})
	// The unsigned->float path below synthesizes through public emitters;
	// replay re-expands it from the single event recorded above.
	defer a.pauseRecord()()

	unsigned := from == TypeU || from == TypeUL || from == TypeP
	if unsigned && to.IsFloat() {
		a.cvtUnsignedToFloat(from, to, rd, rs)
		return
	}
	if (from == TypeF || from == TypeD) && (to == TypeU || to == TypeUL || to == TypeP) {
		a.failf("%w: cv%s2%s (float to unsigned is not in the VCODE set)", ErrBadType, from.Letter(), to.Letter())
		return
	}
	a.setErr(a.backend.Cvt(a.buf, from, to, rd, rs))
}

// cvtUnsignedToFloat synthesizes unsigned->float conversions from core
// instructions, exactly the portable-extension style of §5.4: convert as
// signed, then compensate when the sign bit was set.
func (a *Asm) cvtUnsignedToFloat(from, to Type, rd, rs Reg) {
	ptr := a.backend.PtrBytes()
	wide := from == TypeUL || from == TypeP || (from == TypeU && ptr == 8)
	if from == TypeU && ptr == 8 {
		// 64-bit target: zero-extend into the scratch register, then a
		// signed 64-bit convert is exact.
		sc := a.backend.ScratchReg()
		if err := a.backend.Cvt(a.buf, TypeU, TypeUL, sc, rs); err != nil {
			a.setErr(err)
			return
		}
		a.setErr(a.backend.Cvt(a.buf, TypeL, to, rd, sc))
		return
	}
	signedFrom := TypeI
	if wide {
		signedFrom = TypeL
	}
	// rd = (double)(signed)rs; if rs had the sign bit set, rd += 2^bits.
	target := to
	if to == TypeF {
		target = TypeD // do the arithmetic in double, narrow at the end
	}
	if err := a.backend.Cvt(a.buf, signedFrom, target, rd, rs); err != nil {
		a.setErr(err)
		return
	}
	done := a.NewLabel()
	site, err := a.backend.BranchImm(a.buf, OpBge, signedFrom, rs, 0)
	if err != nil {
		a.setErr(err)
		return
	}
	a.refLabel(site, done)
	bias := 4294967296.0 // 2^32
	if wide && ptr == 8 {
		bias = 18446744073709551616.0 // 2^64
	}
	fs := a.backend.ScratchFPR()
	a.loadPool(TypeD, fs, f64bits(bias), true)
	if err := a.backend.ALU(a.buf, OpAdd, TypeD, rd, rd, fs); err != nil {
		a.setErr(err)
		return
	}
	a.Bind(done)
	if to == TypeF {
		a.setErr(a.backend.Cvt(a.buf, TypeD, TypeF, rd, rd))
	}
}

// ---- Calls ----

// Jal emits a call to the intra-function label l (rarely useful, but part
// of the core set).
func (a *Asm) Jal(l Label) {
	if !a.ready() {
		return
	}
	a.recordUnsupported("intra-function call")
	if a.frame.Leaf {
		a.setErr(ErrLeafCall)
		return
	}
	a.frame.SaveRA = true
	a.insnCount++
	site, err := a.backend.CallLabel(a.buf)
	if err != nil {
		a.setErr(err)
		return
	}
	a.refLabel(site, l)
}

// JalReg emits a call through register r (v_jalp with a register target).
func (a *Asm) JalReg(r Reg) {
	if !a.ready() {
		return
	}
	a.recordUnsupported("indirect call")
	if a.frame.Leaf {
		a.setErr(ErrLeafCall)
		return
	}
	if !a.checkRegs(TypeP, r) {
		return
	}
	a.frame.SaveRA = true
	a.insnCount++
	a.setErr(a.backend.CallReg(a.buf, r))
}

// StartCall begins construction of a call whose argument signature is sig
// ("%i%d..."); the arity and types may be decided at runtime, which is the
// marshaling capability the paper highlights (§2).  Place each argument
// with SetArg, then finish with CallFunc, CallSym or CallReg.
func (a *Asm) StartCall(sig string) {
	if !a.ready() {
		return
	}
	if a.frame.Leaf {
		a.setErr(ErrLeafCall)
		return
	}
	if a.call != nil {
		a.failf("%w: StartCall while a call is already open", ErrState)
		return
	}
	params, err := ParseSig(sig)
	if err != nil {
		a.setErr(err)
		return
	}
	locs, stackBytes := a.conv.layoutArgs(params, nil)
	a.frame.SaveRA = true
	a.call = &callState{locs: locs, stackBytes: stackBytes}
	if stackBytes > 0 {
		a.setErr(a.backend.ALUImm(a.buf, OpAdd, TypeL, a.conv.SP, a.conv.SP, -stackBytes))
	}
}

// SetArg places argument i (0-based) of the open call from register r.
// Arguments should be set in an order that does not read an argument
// register already written — ascending order is always safe when sources
// are not argument registers.
func (a *Asm) SetArg(i int, r Reg) {
	if !a.ready() {
		return
	}
	if a.call == nil {
		a.failf("%w: SetArg without StartCall", ErrState)
		return
	}
	if i < 0 || i >= len(a.call.locs) {
		a.failf("vcode: SetArg index %d out of range (%d args)", i, len(a.call.locs))
		return
	}
	loc := a.call.locs[i]
	if !a.checkRegs(loc.t, r) {
		return
	}
	if loc.reg != NoReg {
		if r != loc.reg {
			a.setErr(a.backend.Unary(a.buf, OpMov, loc.t, loc.reg, r))
		}
		return
	}
	a.setErr(a.backend.Store(a.buf, loc.t, r, a.conv.SP, loc.stackOff))
}

func (a *Asm) finishCall() {
	if a.call != nil && a.call.stackBytes > 0 {
		a.setErr(a.backend.ALUImm(a.buf, OpAdd, TypeL, a.conv.SP, a.conv.SP, a.call.stackBytes))
	}
	a.call = nil
}

// CallFunc emits a call to another generated function; the loader resolves
// the target when both are installed.
func (a *Asm) CallFunc(f *Func) {
	a.callCommon(func() {
		sites, err := a.backend.CallSite(a.buf)
		if err != nil {
			a.setErr(err)
			return
		}
		a.relocs = append(a.relocs, Reloc{Kind: RelocCall, Sites: sites, Target: f})
	})
}

// CallSym emits a call to a machine symbol (a runtime helper or a
// client-registered entry point).
func (a *Asm) CallSym(sym string) {
	a.callCommon(func() {
		sites, err := a.backend.CallSite(a.buf)
		if err != nil {
			a.setErr(err)
			return
		}
		a.relocs = append(a.relocs, Reloc{Kind: RelocCall, Sites: sites, Sym: sym})
	})
}

// CallReg emits a call through a register holding a code address.
func (a *Asm) CallReg(r Reg) {
	a.callCommon(func() {
		if a.checkRegs(TypeP, r) {
			a.setErr(a.backend.CallReg(a.buf, r))
		}
	})
}

func (a *Asm) callCommon(emit func()) {
	if !a.ready() {
		return
	}
	a.recordUnsupported("call")
	if a.frame.Leaf {
		a.setErr(ErrLeafCall)
		return
	}
	a.frame.SaveRA = true
	a.insnCount++
	emit()
	a.finishCall()
}

// RetVal moves the just-returned call result of type t into rd.
func (a *Asm) RetVal(t Type, rd Reg) {
	if !a.ready() {
		return
	}
	if !a.checkRegs(t, rd) {
		return
	}
	src := a.conv.RetInt
	if t.IsFloat() {
		src = a.conv.RetFP
	}
	if rd == src {
		return
	}
	a.insnCount++
	a.setErr(a.backend.Unary(a.buf, OpMov, t, rd, src))
}

// Setfunc materializes the entry address of another generated function
// into rd (resolved at install time), enabling indirect calls and
// function-pointer tables.
func (a *Asm) Setfunc(rd Reg, f *Func) {
	if !a.ready() {
		return
	}
	if !a.checkRegs(TypeP, rd) {
		return
	}
	a.recordUnsupported("function-address materialization")
	a.insnCount++
	sites, err := a.backend.LoadAddr(a.buf, rd)
	if err != nil {
		a.setErr(err)
		return
	}
	a.relocs = append(a.relocs, Reloc{Kind: RelocAddr, Sites: sites, Target: f, Addend: relocEntry})
}

// SetSym materializes the address of a machine symbol into rd (resolved
// at install time) — the data-space counterpart of Setfunc, used for
// tables registered with Machine.DefineSym.
func (a *Asm) SetSym(rd Reg, sym string) {
	if !a.ready() {
		return
	}
	if !a.checkRegs(TypeP, rd) {
		return
	}
	a.recordUnsupported("symbol-address materialization")
	a.insnCount++
	sites, err := a.backend.LoadAddr(a.buf, rd)
	if err != nil {
		a.setErr(err)
		return
	}
	a.relocs = append(a.relocs, Reloc{Kind: RelocAddr, Sites: sites, Sym: sym})
}

// relocEntry is a sentinel Addend meaning "entry address, not base".
const relocEntry int64 = -1

// ---- Emulated operations (§5.2) ----

// emulCall routes an ALU operation through a runtime helper, the paper's
// mechanism for instructions the hardware lacks (e.g. integer division on
// Alpha).  Helpers follow the emulation convention: operands in the first
// two integer argument registers, result in the integer return register,
// every other register preserved.  The sequence saves and restores the
// registers it borrows, including RA, so it is legal even in a declared
// leaf procedure — exactly the paper's "VCODE ignores client hints" escape.
func (a *Asm) emulCall(sym string, rd, rs1, rs2 Reg, imm int64, hasImm bool) {
	bk, b, c := a.backend, a.buf, a.conv
	a0, a1, v0, ra, sp := c.IntArgs[0], c.IntArgs[1], c.RetInt, c.RA, c.SP
	if rs1 == sp || rs2 == sp {
		a.failf("vcode: emulated op on SP is unsupported")
		return
	}
	const area = 48
	emit := func(err error) bool {
		if err != nil {
			a.setErr(err)
			return false
		}
		return true
	}
	if !emit(bk.ALUImm(b, OpAdd, TypeL, sp, sp, -area)) {
		return
	}
	// Park operands first (their current values are still intact even if
	// they alias the borrowed registers), then the borrowed registers.
	if !emit(bk.Store(b, TypeL, rs1, sp, 0)) {
		return
	}
	if !hasImm && !emit(bk.Store(b, TypeL, rs2, sp, 8)) {
		return
	}
	if !emit(bk.Store(b, TypeL, a0, sp, 16)) {
		return
	}
	if !emit(bk.Store(b, TypeL, a1, sp, 24)) {
		return
	}
	if rd != v0 && !emit(bk.Store(b, TypeL, v0, sp, 32)) {
		return
	}
	if !emit(bk.Store(b, TypeL, ra, sp, 40)) {
		return
	}
	if !emit(bk.Load(b, TypeL, a0, sp, 0)) {
		return
	}
	if hasImm {
		if !emit(bk.SetImm(b, TypeL, a1, imm)) {
			return
		}
	} else if !emit(bk.Load(b, TypeL, a1, sp, 8)) {
		return
	}
	sites, err := bk.CallSite(b)
	if !emit(err) {
		return
	}
	a.relocs = append(a.relocs, Reloc{Kind: RelocCall, Sites: sites, Sym: sym})
	if rd != v0 && !emit(bk.Unary(b, OpMov, TypeL, rd, v0)) {
		return
	}
	if !emit(bk.Load(b, TypeL, ra, sp, 40)) {
		return
	}
	if rd != a0 && !emit(bk.Load(b, TypeL, a0, sp, 16)) {
		return
	}
	if rd != a1 && !emit(bk.Load(b, TypeL, a1, sp, 24)) {
		return
	}
	if rd != v0 && !emit(bk.Load(b, TypeL, v0, sp, 32)) {
		return
	}
	emit(bk.ALUImm(b, OpAdd, TypeL, sp, sp, area))
}

func f32bits(f float32) uint64 { return uint64(f32raw(f)) }
