package core_test

import (
	"strings"
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

// TestScheduleDelayFillsSlot checks that on a delay-slot machine the slot
// instruction replaces the padding nop (no extra word), and that the code
// still computes the right value.
func TestScheduleDelayFillsSlot(t *testing.T) {
	bk, m := newMips()
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a.Seti(acc, 0)
	top := a.NewLabel()
	a.Bind(top)
	a.Subii(args[0], args[0], 1)
	before := a.Buf().Len()
	a.ScheduleDelay(
		func() { a.Bgtii(args[0], 0, top) },
		func() { a.Addii(acc, acc, 1) },
	)
	after := a.Buf().Len()
	a.Reti(acc)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	// bgt on MIPS expands to slt+bne+slot: exactly 3 words, none wasted
	// on a nop.
	if after-before != 3 {
		t.Errorf("scheduled branch used %d words, want 3", after-before)
	}
	got, err := m.Call(fn, core.I(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 10 {
		t.Errorf("loop counted %d, want 10", got.Int())
	}
}

// TestScheduleDelayNoSlotMachine checks the portable behaviour on Alpha:
// the slot instruction is placed before the branch and semantics match.
func TestScheduleDelayNoSlotMachine(t *testing.T) {
	bk := alpha.New()
	mm := mem.New(1<<22, false)
	m := core.NewMachine(bk, alpha.NewCPU(mm), mm)
	a := core.NewAsm(bk)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a.Seti(acc, 0)
	top := a.NewLabel()
	a.Bind(top)
	a.Subii(args[0], args[0], 1)
	a.ScheduleDelay(
		func() { a.Bgtii(args[0], 0, top) },
		func() { a.Addii(acc, acc, 1) },
	)
	a.Reti(acc)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.I(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 10 {
		t.Errorf("loop counted %d, want 10", got.Int())
	}
}

// TestRawLoadPads checks that RawLoad inserts exactly the nops needed to
// cover the machine's load delay.
func TestRawLoadPads(t *testing.T) {
	bk, _ := newMips()
	a := core.NewAsm(bk)
	args, err := a.Begin("%p", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Buf().Len()
	a.RawLoad(func() { a.Ldii(r, args[0], 0) }, 0)
	if got := a.Buf().Len() - before; got != 2 { // lw + 1 padding nop
		t.Errorf("RawLoad(uses=0) emitted %d words, want 2", got)
	}
	before = a.Buf().Len()
	a.RawLoad(func() { a.Ldii(r, args[0], 4) }, 1)
	if got := a.Buf().Len() - before; got != 1 { // no padding needed
		t.Errorf("RawLoad(uses=1) emitted %d words, want 1", got)
	}
}

// TestMutualRecursionViaSetfunc links two functions that call each other
// through function pointers (is-even/is-odd), exercising Setfunc
// relocations and install-time resolution.
func TestMutualRecursionViaSetfunc(t *testing.T) {
	bk, m := newMips()

	// Function slots in data memory, patched after install.
	slots, err := m.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}

	build := func(name string, otherSlot uint64, base int64) (*core.Func, error) {
		a := core.NewAsm(bk)
		a.SetName(name)
		args, err := a.Begin("%i", core.NonLeaf)
		if err != nil {
			return nil, err
		}
		n, err := a.GetReg(core.Var)
		if err != nil {
			return nil, err
		}
		a.Movi(n, args[0])
		done := a.NewLabel()
		res, err := a.GetReg(core.Var)
		if err != nil {
			return nil, err
		}
		a.Seti(res, base) // is-even(0)=1, is-odd(0)=0
		a.Beqii(n, 0, done)
		// return other(n-1)
		ptr, err := a.GetReg(core.Temp)
		if err != nil {
			return nil, err
		}
		a.Setp(ptr, int64(otherSlot))
		a.Ldpi(ptr, ptr, 0)
		a.StartCall("%i")
		a.Subii(n, n, 1)
		a.SetArg(0, n)
		a.CallReg(ptr)
		a.RetVal(core.TypeI, res)
		a.Bind(done)
		a.Reti(res)
		return a.End()
	}

	even, err := build("even", slots+4, 1)
	if err != nil {
		t.Fatal(err)
	}
	odd, err := build("odd", slots, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Install(even); err != nil {
		t.Fatal(err)
	}
	if err := m.Install(odd); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem().Store(slots, 4, even.EntryAddr()); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem().Store(slots+4, 4, odd.EntryAddr()); err != nil {
		t.Fatal(err)
	}
	for n := int32(0); n < 9; n++ {
		got, err := m.Call(even, core.I(n))
		if err != nil {
			t.Fatalf("even(%d): %v", n, err)
		}
		want := int64(1 - n%2)
		if got.Int() != want {
			t.Errorf("even(%d) = %d, want %d", n, got.Int(), want)
		}
	}
}

// TestCallFuncReloc links a direct call between two generated functions.
func TestCallFuncReloc(t *testing.T) {
	bk, m := newMips()
	a := core.NewAsm(bk)
	args, _ := a.Begin("%i", core.Leaf)
	a.Addii(args[0], args[0], 100)
	a.Reti(args[0])
	callee, err := a.End()
	if err != nil {
		t.Fatal(err)
	}

	a2 := core.NewAsm(bk)
	args, _ = a2.Begin("%i", core.NonLeaf)
	a2.StartCall("%i")
	a2.SetArg(0, args[0])
	a2.CallFunc(callee)
	r, err := a2.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a2.RetVal(core.TypeI, r)
	a2.Reti(r)
	caller, err := a2.End()
	if err != nil {
		t.Fatal(err)
	}
	// Installing the caller pulls the callee in.
	got, err := m.Call(caller, core.I(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 101 {
		t.Fatalf("caller(1) = %d", got.Int())
	}
	if !callee.Installed() {
		t.Error("callee not installed transitively")
	}
}

// TestMachineTrap checks client-defined runtime helpers.
func TestMachineTrap(t *testing.T) {
	bk, m := newMips()
	conv := bk.DefaultConv()
	if err := m.DefineTrap("__host_hash", func(c core.CPU, _ *mem.Memory) {
		x := c.Reg(conv.IntArgs[0])
		c.SetReg(conv.RetInt, x*2654435761)
	}); err != nil {
		t.Fatal(err)
	}
	a := core.NewAsm(bk)
	args, _ := a.Begin("%i", core.NonLeaf)
	a.StartCall("%i")
	a.SetArg(0, args[0])
	a.CallSym("__host_hash")
	r, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatal(err)
	}
	a.RetVal(core.TypeU, r)
	a.Retu(r)
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.I(7))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(7) * 2654435761
	if got.Uint() != uint64(uint32(want)) {
		t.Fatalf("trap result %#x", got.Uint())
	}
}

// TestMachineErrors exercises loader failure modes.
func TestMachineErrors(t *testing.T) {
	bk, m := newMips()
	a := core.NewAsm(bk)
	args, _ := a.Begin("%i", core.NonLeaf)
	a.StartCall("%i")
	a.SetArg(0, args[0])
	a.CallSym("__nowhere")
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Install(fn); err == nil || !strings.Contains(err.Error(), "__nowhere") {
		t.Fatalf("undefined symbol: %v", err)
	}

	// Wrong-backend install.
	abk := alpha.New()
	a2 := core.NewAsm(abk)
	args, _ = a2.Begin("%i", core.Leaf)
	a2.Reti(args[0])
	afn, err := a2.End()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Install(afn); err == nil {
		t.Fatal("installing alpha code on a mips machine should fail")
	}

	// Wrong arity / wrong type calls.
	a3 := core.NewAsm(bk)
	args, _ = a3.Begin("%i", core.Leaf)
	a3.Reti(args[0])
	fn3, err := a3.End()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(fn3); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := m.Call(fn3, core.D(1)); err == nil {
		t.Error("type mismatch should fail")
	}
}

// TestTrace checks the single-step tracer (the §6.2 debugger): the trace
// of plus1 must show the executed instructions.
func TestTrace(t *testing.T) {
	bk, m := newMips()
	a := core.NewAsm(bk)
	args, _ := a.Begin("%i", core.Leaf)
	a.Addii(args[0], args[0], 1)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.SetTrace(&sb)
	if _, err := m.Call(fn, core.I(1)); err != nil {
		t.Fatal(err)
	}
	m.SetTrace(nil)
	out := sb.String()
	for _, want := range []string{"addiu a0, a0, 1", "jr ra", "move v0, a0"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestInterruptHandlerConvention generates code under an all-callee-saved
// convention (§5.3's interrupt-handler scenario) and checks that every
// register the function touches is preserved across the call.
func TestInterruptHandlerConvention(t *testing.T) {
	bk := mips.New()
	mm := mem.New(1<<22, false)
	m := core.NewMachine(bk, mips.NewCPU(mm), mm)
	conv := bk.DefaultConv().Clone()
	conv.AllCalleeSaved()

	a := core.NewAsmConv(bk, conv)
	_, err := a.Begin("", core.NonLeaf)
	if err != nil {
		t.Fatal(err)
	}
	// Grab a handful of registers and clobber them.
	for i := 0; i < 6; i++ {
		r, err := a.GetReg(core.Temp)
		if err != nil {
			t.Fatal(err)
		}
		a.Seti(r, int64(i)*1111)
	}
	a.Retv()
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	cpu := m.CPU()
	// Pre-set every former caller-saved register and check survival.
	seed := map[core.Reg]uint64{}
	for i, r := range bk.DefaultConv().CallerSaved {
		v := uint64(0xdead0000 + i)
		cpu.SetReg(r, v)
		seed[r] = v
	}
	if _, err := m.Call(fn); err != nil {
		t.Fatal(err)
	}
	for r, v := range seed {
		if cpu.Reg(r) != v {
			t.Errorf("register %v clobbered under all-callee-saved convention (%#x != %#x)",
				r, cpu.Reg(r), v)
		}
	}
	if fn.FrameBytes == 0 {
		t.Error("interrupt-handler code should save registers (frame expected)")
	}
}
