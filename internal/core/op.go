package core

import "fmt"

// Op is a VCODE base operation (paper Table 2).  An instruction is an Op
// composed with a Type.
type Op uint8

const (
	// Binary operations (rd, rs1, rs2): types i u l ul p f d unless noted.
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // i u l ul p
	OpMod // i u l ul p
	OpAnd // i u l ul
	OpOr  // i u l ul
	OpXor // i u l ul
	OpLsh // i u l ul
	OpRsh // i u l ul; sign bit propagated for signed types

	// Unary operations (rd, rs).
	OpCom // bit complement: i u l ul
	OpNot // logical not: i u l ul
	OpMov // copy: i u l ul p f d
	OpNeg // negation: i l f d
	OpSet // load constant: i u l ul p f d

	// Memory operations (rd/rs, base, offset): all data types.
	OpLd
	OpSt

	// Control.
	OpRet // return (optionally with value)
	OpJmp // unconditional jump
	OpJal // jump and link

	// Branches (rs1, rs2, label): i u l ul p f d.
	OpBlt
	OpBle
	OpBgt
	OpBge
	OpBeq
	OpBne

	OpNop

	numOps
)

var opNames = [numOps]string{
	"add", "sub", "mul", "div", "mod", "and", "or", "xor", "lsh", "rsh",
	"com", "not", "mov", "neg", "set",
	"ld", "st",
	"ret", "jmp", "jal",
	"blt", "ble", "bgt", "bge", "beq", "bne",
	"nop",
}

func (o Op) String() string {
	if o >= numOps {
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
	return opNames[o]
}

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= OpBlt && o <= OpBne }

// IsCommutative reports whether o is commutative in its two source
// operands.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpBeq, OpBne:
		return true
	}
	return false
}

// InvertBranch returns the branch that is taken exactly when o is not.
func (o Op) InvertBranch() Op {
	switch o {
	case OpBlt:
		return OpBge
	case OpBle:
		return OpBgt
	case OpBgt:
		return OpBle
	case OpBge:
		return OpBlt
	case OpBeq:
		return OpBne
	case OpBne:
		return OpBeq
	}
	return o
}

// SwapBranch returns the branch equivalent to o with its operands swapped
// (a < b  ==  b > a).
func (o Op) SwapBranch() Op {
	switch o {
	case OpBlt:
		return OpBgt
	case OpBle:
		return OpBge
	case OpBgt:
		return OpBlt
	case OpBge:
		return OpBle
	}
	return o // beq, bne symmetric
}

// aluTypeOK reports whether t is a legal operand type for binary op o.
func aluTypeOK(o Op, t Type) bool {
	switch o {
	case OpAdd, OpSub, OpMul:
		switch t {
		case TypeI, TypeU, TypeL, TypeUL, TypeP, TypeF, TypeD:
			return true
		}
	case OpDiv:
		switch t {
		case TypeI, TypeU, TypeL, TypeUL, TypeP, TypeF, TypeD:
			return true
		}
	case OpMod:
		switch t {
		case TypeI, TypeU, TypeL, TypeUL, TypeP:
			return true
		}
	case OpAnd, OpOr, OpXor, OpLsh, OpRsh:
		switch t {
		case TypeI, TypeU, TypeL, TypeUL:
			return true
		}
	}
	return false
}

// unaryTypeOK reports whether t is a legal operand type for unary op o.
func unaryTypeOK(o Op, t Type) bool {
	switch o {
	case OpCom, OpNot:
		switch t {
		case TypeI, TypeU, TypeL, TypeUL:
			return true
		}
	case OpMov, OpSet:
		switch t {
		case TypeI, TypeU, TypeL, TypeUL, TypeP, TypeF, TypeD:
			return true
		}
	case OpNeg:
		switch t {
		case TypeI, TypeL, TypeF, TypeD:
			return true
		}
	}
	return false
}

// branchTypeOK reports whether t is a legal operand type for branch op o.
func branchTypeOK(o Op, t Type) bool {
	if !o.IsBranch() {
		return false
	}
	switch t {
	case TypeI, TypeU, TypeL, TypeUL, TypeP, TypeF, TypeD:
		return true
	}
	return false
}

// memTypeOK reports whether t is a legal type for a load or store.
func memTypeOK(t Type) bool {
	switch t {
	case TypeC, TypeUC, TypeS, TypeUS, TypeI, TypeU, TypeL, TypeUL, TypeP, TypeF, TypeD:
		return true
	}
	return false
}
