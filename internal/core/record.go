package core

import "fmt"

// This file implements portable-emission recording, the substrate for the
// profile-guided superblock tier (internal/superblock).  VCODE generates
// code in place and keeps no intermediate representation, so a client that
// wants to re-optimize a hot function later has nothing to re-walk — the
// paper's answer (§5.4, §6.2) is that optimizers are client layers above
// the portable interface.  Recording captures exactly that interface: with
// it enabled, every portable emission (and every register-allocation
// decision) is appended to a Recording as it happens, at the portable
// level, before backend expansion.  Replaying the recording through a
// fresh Asm on the same backend reproduces the function bit-for-bit —
// same registers, same frame, same code — which is what lets a superblock
// rewriter re-emit a *different* arrangement of the same instructions and
// still guarantee identical architectural state.
//
// The cost discipline matches internal/telemetry: recording is off by
// default, and with it off each emission pays a single nil pointer check.

// RecKind identifies one recorded portable event.
type RecKind uint8

const (
	// Instruction events (replayable through the public emitters).
	RecALU RecKind = iota
	RecALUI
	RecUnary
	RecSetI
	RecSetF
	RecSetD
	RecLd  // register-offset load: Rd, Rs1=base, Rs2=roff
	RecLdI // immediate-offset load: Rd, Rs1=base, Imm=off
	RecSt  // register-offset store: Rd=value, Rs1=base, Rs2=roff
	RecStI // immediate-offset store: Rd=value, Rs1=base, Imm=off
	RecBr  // Rs1, Rs2, Label; Site is the branch word index
	RecBrI // Rs1, Imm, Label; Site is the branch word index
	RecJmp
	RecBind
	RecRet
	RecRetVoid
	RecNop
	RecCvt // T=from, T2=to
	RecExt // Name, T, Rd, Srcs

	// Register-allocation events (replayed by BeginFromRecording; they
	// emit no code, so their position in the stream does not matter —
	// only their order relative to each other).
	RecGetReg  // Rd=granted register, Class, FP
	RecPutReg  // Rd=freed register
	RecLocal   // T=slot type, Imm=granted SP offset
	RecHardReg // Rd=reserved hard register, Class=Var when callee-saved
)

// IsAlloc reports whether k is a register-allocation event rather than an
// instruction event.
func (k RecKind) IsAlloc() bool { return k >= RecGetReg }

// RecEvent is one recorded portable emission.  Fields are a union across
// kinds; see the RecKind constants for which fields each kind uses.
type RecEvent struct {
	Kind  RecKind
	Op    Op
	T     Type
	T2    Type // Cvt destination type
	Rd    Reg
	Rs1   Reg
	Rs2   Reg
	Imm   int64
	F     float64 // SetF / SetD constant
	Label Label
	// Site is the code-buffer word index of an emitted branch or jump
	// instruction.  Installed at address A, the instruction executes at
	// PC = A + 4*Site, which is the key an edge profiler reports
	// taken/not-taken counts under — the bridge from bias data back to
	// the recorded branch.
	Site  int
	Class RegClass
	FP    bool
	Name  string // Ext instruction name
	Srcs  []Reg  // Ext source registers
}

// Recording is the portable-level trace of one Begin..End build.
type Recording struct {
	Name   string
	Params []Type
	Leaf   bool
	// Args are the parameter registers Begin returned.
	Args   []Reg
	Events []RecEvent

	unsupported string
}

// Eligible reports whether the recording replays exactly: functions that
// made calls, took function-pointer addresses, or used delay-slot
// scheduling are beyond the replay guarantee and report the reason.
func (r *Recording) Eligible() (bool, string) {
	if r.unsupported != "" {
		return false, r.unsupported
	}
	return true, ""
}

// Branches returns the indices (into Events) of the conditional branch
// events, the sites a bias source can speak to.
func (r *Recording) Branches() []int {
	var out []int
	for i, ev := range r.Events {
		if ev.Kind == RecBr || ev.Kind == RecBrI {
			out = append(out, i)
		}
	}
	return out
}

// UsedRegs returns the set of registers mentioned anywhere in the
// recording (allocation or instruction events).  A rewriter that needs
// scratch state of its own (side-exit counters) must stay out of this set.
func (r *Recording) UsedRegs() map[Reg]bool {
	used := make(map[Reg]bool)
	note := func(regs ...Reg) {
		for _, reg := range regs {
			if reg.Valid() {
				used[reg] = true
			}
		}
	}
	note(r.Args...)
	for _, ev := range r.Events {
		note(ev.Rd, ev.Rs1, ev.Rs2)
		note(ev.Srcs...)
	}
	return used
}

// Record arms (or disarms) recording for subsequent Begin..End builds on
// this assembler.  The recording for the build in progress — or the last
// finished build — is retrieved with TakeRecording.
func (a *Asm) Record(on bool) { a.recOn = on }

// TakeRecording detaches and returns the recording of the most recent
// build (nil when recording was off), so a pooled assembler reused across
// functions never leaks one function's recording into the next.
func (a *Asm) TakeRecording() *Recording {
	r := a.rec
	a.rec = nil
	return r
}

// record appends an instruction event; no-op unless recording is armed
// and we are not inside an internal synthesis expansion (Cvt's
// unsigned-to-float sequence, an Ext's portable definition), which replay
// re-expands from its portable event.
func (a *Asm) record(ev RecEvent) {
	if a.rec == nil || a.recPause > 0 || a.state != stBuilding {
		return
	}
	a.rec.Events = append(a.rec.Events, ev)
}

// recordUnsupported marks the current recording as beyond the replay
// guarantee (calls, address-taking, delay-slot scheduling).
func (a *Asm) recordUnsupported(why string) {
	if a.rec == nil || a.state != stBuilding {
		return
	}
	if a.rec.unsupported == "" {
		a.rec.unsupported = why
	}
}

// pauseRecord suspends event capture during an internal synthesis whose
// portable-level event has already been recorded; the returned func
// resumes capture.
func (a *Asm) pauseRecord() func() {
	a.recPause++
	return func() { a.recPause-- }
}

// BeginFromRecording starts a build with rec's signature and replays its
// register-allocation history, so every physical register and stack slot
// the recorded build used is granted identically here — recorded
// instruction events can then be re-emitted (in any order a rewriter
// chooses) with their register operands untouched.  It fails if the
// allocator diverges, which can only happen when rec came from a
// different backend or calling convention.
func (a *Asm) BeginFromRecording(rec *Recording) ([]Reg, error) {
	if ok, why := rec.Eligible(); !ok {
		return nil, fmt.Errorf("vcode: recording of %s does not replay: %s", rec.Name, why)
	}
	args, err := a.BeginTypes(rec.Params, rec.Leaf)
	if err != nil {
		return nil, err
	}
	if len(args) != len(rec.Args) {
		return nil, fmt.Errorf("vcode: replay of %s: %d args, recorded %d", rec.Name, len(args), len(rec.Args))
	}
	for i, r := range args {
		if r != rec.Args[i] {
			return nil, fmt.Errorf("vcode: replay of %s: arg %d in %v, recorded %v", rec.Name, i, r, rec.Args[i])
		}
	}
	resume := a.pauseRecord()
	defer resume()
	for _, ev := range rec.Events {
		switch ev.Kind {
		case RecGetReg:
			r, err := a.getReg(ev.Class, ev.FP)
			if err != nil {
				return nil, fmt.Errorf("vcode: replay of %s: %w", rec.Name, err)
			}
			if r != ev.Rd {
				return nil, fmt.Errorf("vcode: replay of %s: allocator granted %v, recorded %v", rec.Name, r, ev.Rd)
			}
		case RecPutReg:
			a.PutReg(ev.Rd)
		case RecLocal:
			if off := a.Local(ev.T); off != ev.Imm {
				return nil, fmt.Errorf("vcode: replay of %s: local at %d, recorded %d", rec.Name, off, ev.Imm)
			}
		case RecHardReg:
			a.ra.reserve(ev.Rd)
			if ev.Class == Var {
				a.noteSaved(ev.Rd)
			}
		}
	}
	return args, nil
}

// Replay re-emits one recorded instruction event through the public
// emitters, mapping the recorded label through mapLabel (labels are build
// scoped; a rewriter binds its own).  Allocation events are skipped — they
// were replayed by BeginFromRecording.
func (a *Asm) Replay(ev RecEvent, mapLabel func(Label) Label) {
	switch ev.Kind {
	case RecALU:
		a.ALU(ev.Op, ev.T, ev.Rd, ev.Rs1, ev.Rs2)
	case RecALUI:
		a.ALUI(ev.Op, ev.T, ev.Rd, ev.Rs1, ev.Imm)
	case RecUnary:
		a.Unary(ev.Op, ev.T, ev.Rd, ev.Rs1)
	case RecSetI:
		a.SetI(ev.T, ev.Rd, ev.Imm)
	case RecSetF:
		a.SetF(ev.Rd, float32(ev.F))
	case RecSetD:
		a.SetD(ev.Rd, ev.F)
	case RecLd:
		a.Ld(ev.T, ev.Rd, ev.Rs1, ev.Rs2)
	case RecLdI:
		a.LdI(ev.T, ev.Rd, ev.Rs1, ev.Imm)
	case RecSt:
		a.St(ev.T, ev.Rd, ev.Rs1, ev.Rs2)
	case RecStI:
		a.StI(ev.T, ev.Rd, ev.Rs1, ev.Imm)
	case RecBr:
		a.Br(ev.Op, ev.T, ev.Rs1, ev.Rs2, mapLabel(ev.Label))
	case RecBrI:
		a.BrI(ev.Op, ev.T, ev.Rs1, ev.Imm, mapLabel(ev.Label))
	case RecJmp:
		a.Jmp(mapLabel(ev.Label))
	case RecBind:
		a.Bind(mapLabel(ev.Label))
	case RecRet:
		a.Ret(ev.T, ev.Rs1)
	case RecRetVoid:
		a.RetVoid()
	case RecNop:
		a.Nop()
	case RecCvt:
		a.Cvt(ev.T, ev.T2, ev.Rd, ev.Rs1)
	case RecExt:
		a.Ext(ev.Name, ev.T, ev.Rd, ev.Srcs...)
	}
}
