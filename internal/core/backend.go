package core

import "repro/internal/verify"

// Backend is the per-target port of VCODE: the mapping from the core
// instruction set onto one machine's binary encodings plus that machine's
// calling conventions and activation-record layout.  Retargeting VCODE
// means implementing this interface (paper §3.3); the MIPS, SPARC and Alpha
// ports live in internal/mips, internal/sparc and internal/alpha.
//
// All emitters append encoded words to b immediately.  Emitters that need a
// scratch register (e.g. to materialize an out-of-range immediate) use the
// target's reserved assembler-temporary register internally; scratch use
// never escapes the single VCODE instruction being emitted.
type Backend interface {
	// Name returns the target name ("mips", "sparc", "alpha").
	Name() string
	// PtrBytes returns the native word/pointer size (4 or 8).
	PtrBytes() int
	// RegFile describes the target's register banks.
	RegFile() *RegFile
	// DefaultConv returns the target's standard calling convention.  The
	// returned value is shared; clients wanting to modify conventions
	// must Clone it first.
	DefaultConv() *CallConv
	// BranchDelaySlots returns the number of architectural branch delay
	// slots (1 on MIPS/SPARC, 0 on Alpha).
	BranchDelaySlots() int
	// LoadDelay returns the number of instructions that must separate a
	// load from the first use of its result to avoid a stall.
	LoadDelay() int
	// BigEndian reports the target byte order.
	BigEndian() bool
	// ScratchReg returns the reserved integer assembler-temporary
	// register; ScratchFPR the reserved floating-point one.  Neither is
	// ever handed out by the allocator; the core uses them only inside
	// single synthesized VCODE instructions.
	ScratchReg() Reg
	ScratchFPR() Reg
	// RetAddrOffset is the displacement added to the link register to
	// form the return address (8 on SPARC, 0 elsewhere).
	RetAddrOffset() int

	// ALU emits rd = rs1 op rs2 for a binary operation.
	ALU(b *Buf, op Op, t Type, rd, rs1, rs2 Reg) error
	// ALUImm emits rd = rs op imm.  Out-of-range immediates are
	// materialized into the assembler scratch register.
	ALUImm(b *Buf, op Op, t Type, rd, rs Reg, imm int64) error
	// Unary emits rd = op rs (com, not, mov, neg).
	Unary(b *Buf, op Op, t Type, rd, rs Reg) error
	// SetImm emits rd = imm for an integer or pointer type.
	SetImm(b *Buf, t Type, rd Reg, imm int64) error
	// Cvt emits rd = (to)rs, converting between VCODE types.
	Cvt(b *Buf, from, to Type, rd, rs Reg) error
	// Load emits rd = *(t*)(base + off).
	Load(b *Buf, t Type, rd, base Reg, off int64) error
	// LoadRR emits rd = *(t*)(base + idx).
	LoadRR(b *Buf, t Type, rd, base, idx Reg) error
	// Store emits *(t*)(base + off) = rs.
	Store(b *Buf, t Type, rs, base Reg, off int64) error
	// StoreRR emits *(t*)(base + idx) = rs.
	StoreRR(b *Buf, t Type, rs, base, idx Reg) error

	// Branch emits a conditional branch comparing rs1 and rs2 with an
	// unresolved target, returning the instruction index to patch.  On
	// delay-slot machines the slot is filled with a nop.
	Branch(b *Buf, op Op, t Type, rs1, rs2 Reg) (int, error)
	// BranchImm is Branch with an immediate second operand.
	BranchImm(b *Buf, op Op, t Type, rs Reg, imm int64) (int, error)
	// Jump emits an unconditional jump with an unresolved intra-function
	// target, returning the patch site.
	Jump(b *Buf) (int, error)
	// JumpReg emits a jump through a register.
	JumpReg(b *Buf, r Reg) error
	// CallSite emits a call (jump-and-link) whose absolute target is
	// resolved at install time, returning the word indices the loader
	// must patch (RelocCall).
	CallSite(b *Buf) ([]int, error)
	// CallLabel emits a PC-relative call to an intra-function label,
	// returning a patch site resolvable with PatchBranch.
	CallLabel(b *Buf) (int, error)
	// CallReg emits a call through a register.
	CallReg(b *Buf, r Reg) error
	// PatchBranch resolves the branch or jump at patch site to target
	// (an instruction index in the same buffer).
	PatchBranch(b *Buf, site, target int) error
	// PatchCall resolves a CallSite to an absolute byte address; base is
	// the address of buffer word 0.
	PatchCall(b *Buf, sites []int, base, target uint64) error
	// PatchMemOffset rewrites the immediate displacement of the load or
	// store at site (used to fix incoming stack-argument loads once the
	// final frame size is known).
	PatchMemOffset(b *Buf, site int, off int64) error
	// RetEncoding returns the single-word plain-return instruction, used
	// to rewrite jump-to-epilogue sites into direct returns when the
	// finished function turns out to need no epilogue (paper §5.2).
	RetEncoding(conv *CallConv) uint32

	// LoadAddr emits code materializing an absolute address into rd,
	// returning the word indices the loader patches (RelocAddr).
	LoadAddr(b *Buf, rd Reg) ([]int, error)
	// PatchAddr resolves a LoadAddr site to the absolute address addr.
	PatchAddr(b *Buf, sites []int, addr uint64) error

	// Nop emits a no-op.
	Nop(b *Buf)
	// IsNop reports whether word w encodes the canonical nop.
	IsNop(w uint32) bool

	// MaxPrologueWords returns the worst-case prologue size in words for
	// the given convention (frame adjust + RA + all callee-saved saves).
	MaxPrologueWords(conv *CallConv) int
	// Prologue writes the actual prologue for frame fr into
	// b.w[at:at+MaxPrologueWords] and returns the number of words
	// written; the caller points the function entry at the tail of the
	// reserved region so no filler executes.
	Prologue(b *Buf, at int, conv *CallConv, fr *Frame) (int, error)
	// Epilogue appends the epilogue: restore saved registers, pop the
	// frame, return.
	Epilogue(b *Buf, conv *CallConv, fr *Frame) error

	// EmulatedOp reports the runtime-helper symbol for operations the
	// target cannot perform inline (e.g. integer division on Alpha).
	// The helper convention: operands in the first integer argument
	// registers, result in the integer return register, all other
	// registers preserved.
	EmulatedOp(op Op, t Type) (sym string, ok bool)

	// Extension hooks (paper §5.4): TryExt emits the named extension
	// instruction directly if the hardware supports it, reporting
	// whether it did; otherwise the portable core-level definition runs.
	TryExt(b *Buf, name string, t Type, rd Reg, rs []Reg) (bool, error)

	// Disasm decodes one instruction word at byte address pc for
	// debugging and tests.
	Disasm(w uint32, pc uint64) string

	// Classify decodes the control-flow behaviour of one word for the
	// pre-install verifier (internal/verify): whether it branches,
	// calls or jumps indirect, and the absolute target when it is
	// statically known.  Together with Disasm and BranchDelaySlots this
	// makes every Backend a verify.Decoder.
	Classify(w uint32, pc uint64) verify.Insn
}

// RegFile describes a target's register banks.
type RegFile struct {
	NumGPR int
	NumFPR int
	// GPRName/FPRName give assembly names, indexed by register number.
	GPRName []string
	FPRName []string
}

// Name returns the assembly name of r.
func (f *RegFile) Name(r Reg) string {
	if !r.Valid() {
		return "r?"
	}
	if r.IsFP() {
		if n := r.Num(); n < len(f.FPRName) {
			return f.FPRName[n]
		}
	} else if n := r.Num(); n < len(f.GPRName) {
		return f.GPRName[n]
	}
	return r.String()
}

// Frame describes one generated function's activation record.  Following
// the paper (§5.2), the register save area is allocated at its worst-case
// fixed size so that save-area offsets and local offsets are known the
// moment they are needed; the space cost is at most a few dozen words of
// stack per live activation.
type Frame struct {
	// Leaf records the client's v_lambda leaf declaration.
	Leaf bool
	// SavedGPR/SavedFPR list the callee-saved registers actually used,
	// in save order.  Filled in as the allocator hands them out.
	SavedGPR []Reg
	SavedFPR []Reg
	// SaveRA is set when the function may call (non-leaf).
	SaveRA bool
	// LocalBytes is the running size of v_local allocations.
	LocalBytes int64
	// SaveAreaBytes is the fixed worst-case register save area size,
	// computed from the convention at Begin.
	SaveAreaBytes int64
	// Size is the final frame size in bytes (set at End).
	Size int64
}

// SaveSlot returns the save-area offset (from SP after the frame push) of
// the i'th saved slot; slot 0 is RA, integer saves follow, then FP saves.
func (fr *Frame) SaveSlot(i int, ptrBytes int) int64 {
	return int64(i) * int64(ptrBytes)
}
