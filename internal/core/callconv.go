package core

import "fmt"

// CallConv describes a calling convention.  VCODE lets clients substitute
// conventions on a per-generated-function basis (paper §5.3/§5.4): Clone
// the backend's DefaultConv, adjust register classes, and pass the result
// to NewAsmConv.
type CallConv struct {
	// IntArgs / FPArgs list the argument registers in order.
	IntArgs []Reg
	FPArgs  []Reg
	// RetInt / RetFP are the result registers.
	RetInt Reg
	RetFP  Reg
	// RA is the link register, SP the stack pointer, Zero the hardwired
	// zero register (NoReg if none).
	RA   Reg
	SP   Reg
	Zero Reg
	// CallerSaved / CalleeSaved list allocatable integer registers in
	// allocation-priority order.  CallerSavedFP / CalleeSavedFP likewise
	// for the floating-point bank.  Argument registers are listed here
	// too when they are allocatable once unused by the signature.
	CallerSaved   []Reg
	CalleeSaved   []Reg
	CallerSavedFP []Reg
	CalleeSavedFP []Reg
	// StackAlign is the required SP alignment in bytes.
	StackAlign int
	// SlotBytes is the width of one outgoing stack-argument slot.
	SlotBytes int
	// HardTemp/HardVar back the architecture-independent hard-coded
	// register names T0,T1,... and S0,S1,... (paper §5.3); HardTempFP
	// and HardVarFP back FT and FS.  Using these names bypasses the
	// allocator and roughly halves code generation cost.
	HardTemp   []Reg
	HardVar    []Reg
	HardTempFP []Reg
	HardVarFP  []Reg
}

// Clone returns a deep copy of c that the client may freely modify.
func (c *CallConv) Clone() *CallConv {
	d := *c
	d.IntArgs = append([]Reg(nil), c.IntArgs...)
	d.FPArgs = append([]Reg(nil), c.FPArgs...)
	d.CallerSaved = append([]Reg(nil), c.CallerSaved...)
	d.CalleeSaved = append([]Reg(nil), c.CalleeSaved...)
	d.CallerSavedFP = append([]Reg(nil), c.CallerSavedFP...)
	d.CalleeSavedFP = append([]Reg(nil), c.CalleeSavedFP...)
	d.HardTemp = append([]Reg(nil), c.HardTemp...)
	d.HardVar = append([]Reg(nil), c.HardVar...)
	d.HardTempFP = append([]Reg(nil), c.HardTempFP...)
	d.HardVarFP = append([]Reg(nil), c.HardVarFP...)
	return &d
}

func removeReg(s []Reg, r Reg) []Reg {
	out := s[:0:len(s)]
	for _, x := range s {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

func containsReg(s []Reg, r Reg) bool {
	for _, x := range s {
		if x == r {
			return true
		}
	}
	return false
}

// SetClass dynamically reclassifies register r as caller-saved (Temp),
// callee-saved (Var), or Unavail.  This is the paper's mechanism for using
// generated code where normal register conventions do not hold — e.g. an
// interrupt handler, in which every register is live and must therefore be
// treated as callee-saved.
func (c *CallConv) SetClass(r Reg, class RegClass) error {
	if !r.Valid() {
		return fmt.Errorf("vcode: SetClass: invalid register %v", r)
	}
	if r == c.SP || r == c.RA || r == c.Zero {
		return fmt.Errorf("vcode: SetClass: register %v is reserved", r)
	}
	if r.IsFP() {
		c.CallerSavedFP = removeReg(c.CallerSavedFP, r)
		c.CalleeSavedFP = removeReg(c.CalleeSavedFP, r)
		switch class {
		case Temp:
			c.CallerSavedFP = append(c.CallerSavedFP, r)
		case Var:
			c.CalleeSavedFP = append(c.CalleeSavedFP, r)
		}
		return nil
	}
	c.CallerSaved = removeReg(c.CallerSaved, r)
	c.CalleeSaved = removeReg(c.CalleeSaved, r)
	switch class {
	case Temp:
		c.CallerSaved = append(c.CallerSaved, r)
	case Var:
		c.CalleeSaved = append(c.CalleeSaved, r)
	}
	return nil
}

// AllCalleeSaved reclassifies every allocatable register as callee-saved,
// the configuration an interrupt-handler client needs.
func (c *CallConv) AllCalleeSaved() {
	c.CalleeSaved = append(c.CalleeSaved, c.CallerSaved...)
	c.CallerSaved = nil
	c.CalleeSavedFP = append(c.CalleeSavedFP, c.CallerSavedFP...)
	c.CallerSavedFP = nil
}

// ClassOf returns the current classification of r under c.
func (c *CallConv) ClassOf(r Reg) RegClass {
	if r.IsFP() {
		if containsReg(c.CallerSavedFP, r) {
			return Temp
		}
		if containsReg(c.CalleeSavedFP, r) {
			return Var
		}
		return Unavail
	}
	if containsReg(c.CallerSaved, r) {
		return Temp
	}
	if containsReg(c.CalleeSaved, r) {
		return Var
	}
	return Unavail
}

// argLoc describes where one incoming or outgoing argument lives.
type argLoc struct {
	t        Type
	reg      Reg   // NoReg when on the stack
	stackOff int64 // offset from SP at entry/call when reg == NoReg
}

// layoutArgs assigns argument locations for a signature under c: integer
// and pointer arguments consume IntArgs in order, floating-point arguments
// consume FPArgs, and overflow goes to ascending stack slots.  stackBytes
// is the total outgoing stack space (already aligned).  locs is appended
// to buf (which may be nil); the call path passes a stack buffer so warm
// calls do not allocate.
func (c *CallConv) layoutArgs(params []Type, buf []argLoc) (locs []argLoc, stackBytes int64) {
	locs = buf
	ni, nf := 0, 0
	var off int64
	slot := int64(c.SlotBytes)
	for _, t := range params {
		l := argLoc{t: t, reg: NoReg}
		if t.IsFloat() {
			if nf < len(c.FPArgs) {
				l.reg = c.FPArgs[nf]
				nf++
			}
		} else {
			if ni < len(c.IntArgs) {
				l.reg = c.IntArgs[ni]
				ni++
			}
		}
		if l.reg == NoReg {
			sz := slot
			if t == TypeD && slot < 8 {
				sz = 8
				off = (off + 7) &^ 7
			}
			l.stackOff = off
			off += sz
		}
		locs = append(locs, l)
	}
	align := int64(c.StackAlign)
	if align > 0 {
		off = (off + align - 1) &^ (align - 1)
	}
	return locs, off
}
