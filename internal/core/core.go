// Package core implements the VCODE dynamic code generation system
// (Engler, PLDI 1996) in Go.
//
// VCODE presents the assembly language of an idealized load-store RISC
// architecture.  Client programs select instructions through a large family
// of per-instruction methods (the analog of the paper's C macro layer, see
// instructions_gen.go) and VCODE transliterates each one to binary machine
// code immediately, in place: no intermediate representation is built or
// consumed at runtime.  The only deferred work is exactly what the paper
// defers — branch/jump backpatching, prologue fill-in, and the per-function
// floating-point constant pool.
//
// A typical client:
//
//	a := core.NewAsm(mips.New())              // pick a target backend
//	args, _ := a.Begin("%i", core.Leaf)       // v_lambda
//	a.Addii(args[0], args[0], 1)              // ADD Integer Immediate
//	a.Reti(args[0])                           // RETurn Integer
//	fn, err := a.End()                        // v_end: link + finish
//
// The resulting *Func holds the emitted machine words plus relocations.  A
// Machine installs it into simulated memory and calls it on the matching
// cycle-counted CPU simulator:
//
//	m := core.NewMachine(mips.New(), mips.NewCPU, memcfg)
//	ret, err := m.Call(fn, core.I(41))        // ret.Int() == 42
//
// The package is deliberately low level: global optimization, instruction
// scheduling beyond delay-slot filling, and register spilling are the
// client's responsibility, as in the paper.
package core
