package core

import (
	"fmt"
	"math"
)

// Value is a typed machine word used to pass arguments to and receive
// results from dynamically generated code.
type Value struct {
	T Type
	// Bits holds the raw representation: sign-extended two's complement
	// for signed integers, zero-extended for unsigned, IEEE-754 bits
	// for floats.
	Bits uint64
}

// I wraps an int as a TypeI value.
func I(v int32) Value { return Value{TypeI, uint64(int64(v))} }

// U wraps an unsigned as a TypeU value.
func U(v uint32) Value { return Value{TypeU, uint64(v)} }

// L wraps a long as a TypeL value.
func L(v int64) Value { return Value{TypeL, uint64(v)} }

// UL wraps an unsigned long as a TypeUL value.
func UL(v uint64) Value { return Value{TypeUL, v} }

// P wraps a simulated-memory address as a TypeP value.
func P(addr uint64) Value { return Value{TypeP, addr} }

// F wraps a float as a TypeF value.
func F(v float32) Value { return Value{TypeF, uint64(math.Float32bits(v))} }

// D wraps a double as a TypeD value.
func D(v float64) Value { return Value{TypeD, math.Float64bits(v)} }

// Int returns the value as a signed integer.
func (v Value) Int() int64 {
	switch v.T {
	case TypeI:
		return int64(int32(v.Bits))
	default:
		return int64(v.Bits)
	}
}

// Uint returns the raw unsigned interpretation.
func (v Value) Uint() uint64 { return v.Bits }

// Float32 returns the value as a float.
func (v Value) Float32() float32 { return math.Float32frombits(uint32(v.Bits)) }

// Float64 returns the value as a double.
func (v Value) Float64() float64 { return math.Float64frombits(v.Bits) }

func (v Value) String() string {
	switch v.T {
	case TypeF:
		return fmt.Sprintf("%v:f", v.Float32())
	case TypeD:
		return fmt.Sprintf("%v:d", v.Float64())
	case TypeU, TypeUL, TypeP:
		return fmt.Sprintf("%d:%s", v.Bits, v.T)
	case TypeV:
		return "void"
	default:
		return fmt.Sprintf("%d:%s", v.Int(), v.T)
	}
}
