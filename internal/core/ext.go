package core

import "math"

// This file implements VCODE's extension layers (paper §3.1, §5.4).
// Extensions are instruction families less general than the core — the
// paper's examples are conditional move and floating-point square root —
// defined either in terms of the core itself (so a retarget of the core
// brings them along for free) or overridden by a backend that has direct
// hardware support (Backend.TryExt).  Because VCODE builds no intermediate
// representation, adding an instruction requires no semantic knowledge:
// an extension is just another emitter.

// ExtDef defines one extension instruction family: a name, the types it
// composes with, and a portable synthesis in terms of core instructions.
type ExtDef struct {
	Name string
	// NSrc is the number of source register operands.
	NSrc int
	// Types lists the operand types the family composes with.
	Types []Type
	// Synth emits the portable definition.  It runs only when the
	// backend's TryExt declines the instruction.
	Synth func(a *Asm, t Type, rd Reg, rs []Reg)
}

func (d *ExtDef) hasType(t Type) bool {
	for _, x := range d.Types {
		if x == t {
			return true
		}
	}
	return false
}

// DefineExt registers an extension instruction on this assembler,
// overriding any builtin of the same name.
func (a *Asm) DefineExt(d *ExtDef) {
	if a.exts == nil {
		a.exts = make(map[string]*ExtDef)
	}
	a.exts[d.Name] = d
}

// Ext emits the named extension instruction.  The backend is offered the
// instruction first (hardware implementation); otherwise the registered or
// builtin portable definition is synthesized from core instructions.
func (a *Asm) Ext(name string, t Type, rd Reg, rs ...Reg) {
	if !a.ready() {
		return
	}
	d := a.lookupExt(name)
	if d == nil {
		a.failf("%w: %q", ErrUnknownExt, name)
		return
	}
	if !d.hasType(t) {
		a.failf("%w: %s%s", ErrBadType, name, t.Letter())
		return
	}
	if len(rs) != d.NSrc {
		a.failf("vcode: %s takes %d source registers, got %d", name, d.NSrc, len(rs))
		return
	}
	a.insnCount++
	ok, err := a.backend.TryExt(a.buf, name, t, rd, rs)
	if err != nil {
		a.setErr(err)
		return
	}
	if ok {
		// Hardware implementation: no public sub-emissions happened, so
		// record the extension as one opaque event; replay re-offers it
		// to the same backend.  The Synth path below needs no event of
		// its own — its expansion goes through the public emitters and is
		// recorded instruction by instruction.
		a.record(RecEvent{Kind: RecExt, Name: name, T: t, Rd: rd, Srcs: append([]Reg(nil), rs...)})
		return
	}
	if d.Synth == nil {
		a.failf("%w: %q has no portable definition on %s", ErrUnknownExt, name, a.backend.Name())
		return
	}
	d.Synth(a, t, rd, rs)
}

func (a *Asm) lookupExt(name string) *ExtDef {
	if d, ok := a.exts[name]; ok {
		return d
	}
	return builtinExts[name]
}

// builtinExts are the extension layers shipped with VCODE, all expressed
// in terms of the core so they are present on every target.
var builtinExts = map[string]*ExtDef{
	"cmovne": {
		// cmovne: rd = rs if cond != 0.
		Name: "cmovne", NSrc: 2,
		Types: []Type{TypeI, TypeU, TypeL, TypeUL, TypeP},
		Synth: func(a *Asm, t Type, rd Reg, rs []Reg) {
			src, cond := rs[0], rs[1]
			skip := a.NewLabel()
			condT := TypeL
			a.BrI(OpBeq, condT, cond, 0, skip)
			a.Unary(OpMov, t, rd, src)
			a.Bind(skip)
		},
	},
	"cmoveq": {
		// cmoveq: rd = rs if cond == 0.
		Name: "cmoveq", NSrc: 2,
		Types: []Type{TypeI, TypeU, TypeL, TypeUL, TypeP},
		Synth: func(a *Asm, t Type, rd Reg, rs []Reg) {
			src, cond := rs[0], rs[1]
			skip := a.NewLabel()
			a.BrI(OpBne, TypeL, cond, 0, skip)
			a.Unary(OpMov, t, rd, src)
			a.Bind(skip)
		},
	},
	"abs": {
		Name: "abs", NSrc: 1,
		Types: []Type{TypeI, TypeL, TypeF, TypeD},
		Synth: func(a *Asm, t Type, rd Reg, rs []Reg) {
			if t.IsFloat() {
				// rd = rs < 0 ? -rs : rs, via a branch.
				done := a.NewLabel()
				a.Unary(OpMov, t, rd, rs[0])
				fz := a.backend.ScratchFPR()
				if t == TypeF {
					a.SetF(fz, 0)
				} else {
					a.SetD(fz, 0)
				}
				a.Br(OpBge, t, rs[0], fz, done)
				a.Unary(OpNeg, t, rd, rd)
				a.Bind(done)
				return
			}
			// Branchless: m = rs >> (bits-1); rd = (rs ^ m) - m.
			tmp, err := a.GetReg(Temp)
			if err != nil {
				a.setErr(err)
				return
			}
			bits := int64(31)
			if t == TypeL {
				bits = int64(8*a.backend.PtrBytes() - 1)
			}
			a.ALUI(OpRsh, t, tmp, rs[0], bits)
			a.ALU(OpXor, toBits(t), rd, rs[0], tmp)
			a.ALU(OpSub, t, rd, rd, tmp)
			a.PutReg(tmp)
		},
	},
	"min": {
		Name: "min", NSrc: 2,
		Types: []Type{TypeI, TypeU, TypeL, TypeUL},
		Synth: minmax(OpBle),
	},
	"max": {
		Name: "max", NSrc: 2,
		Types: []Type{TypeI, TypeU, TypeL, TypeUL},
		Synth: minmax(OpBge),
	},
	"sqrt": {
		// sqrt has no portable core definition; every shipped backend
		// implements it through TryExt, mirroring the paper's MIPS
		// fsqrts/fsqrtd example spec.
		Name: "sqrt", NSrc: 1,
		Types: []Type{TypeF, TypeD},
	},
	"bswap2": {
		// bswap2: rd = the low 16 bits of rs byte-reversed.  Byte
		// swapping is one of the paper's examples of an operation with
		// no natural high-level idiom (§3.1); ASH uses it.
		Name: "bswap2", NSrc: 1,
		Types: []Type{TypeU, TypeUL},
		Synth: func(a *Asm, t Type, rd Reg, rs []Reg) {
			tmp, err := a.GetReg(Temp)
			if err != nil {
				a.setErr(err)
				return
			}
			a.ALUI(OpRsh, t, tmp, rs[0], 8)
			a.ALUI(OpAnd, t, tmp, tmp, 0xff)
			a.ALUI(OpAnd, t, rd, rs[0], 0xff)
			a.ALUI(OpLsh, t, rd, rd, 8)
			a.ALU(OpOr, t, rd, rd, tmp)
			a.PutReg(tmp)
		},
	},
	"bswap4": {
		// bswap4: rd = the low 32 bits of rs byte-reversed.
		Name: "bswap4", NSrc: 1,
		Types: []Type{TypeU, TypeUL},
		Synth: func(a *Asm, t Type, rd Reg, rs []Reg) {
			t1, err := a.GetReg(Temp)
			if err != nil {
				a.setErr(err)
				return
			}
			t2, err := a.GetReg(Temp)
			if err != nil {
				a.setErr(err)
				return
			}
			u := TypeU
			a.ALUI(OpRsh, u, t1, rs[0], 24)
			a.ALUI(OpAnd, u, t1, t1, 0xff)
			a.ALUI(OpRsh, u, t2, rs[0], 8)
			a.ALUI(OpAnd, u, t2, t2, 0xff00)
			a.ALU(OpOr, u, t1, t1, t2)
			a.ALUI(OpAnd, u, t2, rs[0], 0xff00)
			a.ALUI(OpLsh, u, t2, t2, 8)
			a.ALU(OpOr, u, t1, t1, t2)
			a.ALUI(OpLsh, u, t2, rs[0], 24)
			a.ALU(OpOr, u, t1, t1, t2)
			a.Unary(OpMov, t, rd, t1)
			a.PutReg(t1)
			a.PutReg(t2)
		},
	},
	"prefetch": {
		// prefetch: advisory; the portable definition is a nop, a
		// backend with a prefetch instruction overrides it.
		Name: "prefetch", NSrc: 1,
		Types: []Type{TypeP},
		Synth: func(a *Asm, t Type, rd Reg, rs []Reg) {
			a.backend.Nop(a.buf)
		},
	},
}

func minmax(keep Op) func(a *Asm, t Type, rd Reg, rs []Reg) {
	return func(a *Asm, t Type, rd Reg, rs []Reg) {
		// rd = min/max(rs0, rs1); rd may alias either source.
		done := a.NewLabel()
		other := a.NewLabel()
		a.Br(keep, t, rs[0], rs[1], other)
		a.Unary(OpMov, t, rd, rs[1])
		a.Jmp(done)
		a.Bind(other)
		a.Unary(OpMov, t, rd, rs[0])
		a.Bind(done)
	}
}

// toBits maps a type to its same-width bitwise-operation type (signed
// shifts keep their own type; xor wants an and/or/xor-legal type).
func toBits(t Type) Type {
	switch t {
	case TypeI:
		return TypeI
	case TypeL:
		return TypeL
	default:
		return t
	}
}

// BuiltinExtNames lists the shipped extension families (for documentation
// and tests).
func BuiltinExtNames() []string {
	names := make([]string, 0, len(builtinExts))
	for n := range builtinExts {
		names = append(names, n)
	}
	return names
}

// f32raw and f64bits are tiny helpers shared by the assembler.
func f32raw(f float32) uint32  { return math.Float32bits(f) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }
