package core_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

// buildAddK generates fn(x) = x + k.
func buildAddK(t *testing.T, bk core.Backend, k int64) *core.Func {
	t.Helper()
	a := core.NewAsm(bk)
	a.SetName(fmt.Sprintf("add%d", k))
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	a.Addii(args[0], args[0], k)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestInstallBatchBasic(t *testing.T) {
	bk, m := newMips()
	const n = 24
	fns := make([]*core.Func, n)
	for i := range fns {
		fns[i] = buildAddK(t, bk, int64(i))
	}
	errs := m.InstallBatch(context.Background(), 4, fns)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if !m.Installed(fns[i]) {
			t.Fatalf("item %d not installed", i)
		}
	}
	for i, f := range fns {
		got, err := m.Call(f, core.I(100))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got.Int() != int64(100+i) {
			t.Fatalf("call %d = %d, want %d", i, got.Int(), 100+i)
		}
	}
	// The address map must be sorted and contain every batch member.
	spans := m.FuncSpans()
	for i := 1; i < len(spans); i++ {
		if spans[i-1].Start >= spans[i].Start {
			t.Fatalf("spans unsorted at %d: %#x >= %#x", i, spans[i-1].Start, spans[i].Start)
		}
	}
	for i, f := range fns {
		if name, ok := m.SymbolizePC(f.Addr()); !ok || name != f.Name {
			t.Fatalf("item %d: SymbolizePC(%#x) = %q,%v", i, f.Addr(), name, ok)
		}
	}
}

func TestInstallBatchCancelLeavesArenaConsistent(t *testing.T) {
	bk, m := newMips()
	// A pre-existing function so the arena and span map are non-empty.
	pre := buildAddK(t, bk, 1000)
	if err := m.Install(pre); err != nil {
		t.Fatal(err)
	}
	resident := m.CodeBytesResident()
	spans := len(m.FuncSpans())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fns := make([]*core.Func, 8)
	for i := range fns {
		fns[i] = buildAddK(t, bk, int64(i))
	}
	errs := m.InstallBatch(ctx, 2, fns)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("item %d: nil error after cancel", i)
		}
		if m.Installed(fns[i]) {
			t.Fatalf("item %d installed despite cancel", i)
		}
	}
	if got := m.CodeBytesResident(); got != resident {
		t.Fatalf("resident code %d after aborted batch, want %d", got, resident)
	}
	if got := len(m.FuncSpans()); got != spans {
		t.Fatalf("span count %d after aborted batch, want %d", got, spans)
	}
	// The machine is fully usable afterwards: the same functions install
	// and run (the aborted reservation was returned to the allocator).
	errs = m.InstallBatch(context.Background(), 2, fns)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reinstall item %d: %v", i, err)
		}
	}
	got, err := m.Call(fns[3], core.I(1))
	if err != nil || got.Int() != 4 {
		t.Fatalf("call after reinstall = %v, %v", got, err)
	}
}

func TestInstallBatchPoisonedItemFailsAlone(t *testing.T) {
	bk, m := newMips()
	fns := []*core.Func{
		buildAddK(t, bk, 1),
		// Garbage body: an undecodable word outside any constant pool —
		// the verifier rejects it.
		{Name: "poison", BackendName: bk.Name(), Words: []uint32{0xffffffff}, PoolStart: 1},
		buildAddK(t, bk, 3),
	}
	errs := m.InstallBatch(context.Background(), 2, fns)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("siblings failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("poisoned item did not fail")
	}
	if m.Installed(fns[1]) {
		t.Fatal("poisoned item reported installed")
	}
	for _, i := range []int{0, 2} {
		got, err := m.Call(fns[i], core.I(10))
		if err != nil {
			t.Fatalf("sibling %d: %v", i, err)
		}
		if want := int64(10 + i + 1); got.Int() != want {
			t.Fatalf("sibling %d = %d, want %d", i, got.Int(), want)
		}
	}
}

func TestInstallBatchDuplicatesAndReinstalls(t *testing.T) {
	bk, m := newMips()
	f := buildAddK(t, bk, 7)
	already := buildAddK(t, bk, 9)
	if err := m.Install(already); err != nil {
		t.Fatal(err)
	}
	spans := len(m.FuncSpans())
	errs := m.InstallBatch(context.Background(), 2, []*core.Func{f, already, f, nil})
	if errs[0] != nil || errs[1] != nil || errs[2] != nil {
		t.Fatalf("errs = %v", errs[:3])
	}
	if errs[3] == nil {
		t.Fatal("nil function accepted")
	}
	if got := len(m.FuncSpans()); got != spans+1 {
		t.Fatalf("span count %d, want %d (one new function)", got, spans+1)
	}
	got, err := m.Call(f, core.I(1))
	if err != nil || got.Int() != 8 {
		t.Fatalf("call = %v, %v", got, err)
	}
}

// TestInstallBatchIntraBatchCall installs a caller and its callee in the
// same batch: the caller's relocation must resolve against the callee's
// pre-reserved address (phase 1's assigned map), not a separate install.
func TestInstallBatchIntraBatchCall(t *testing.T) {
	bk, m := newMips()
	callee := buildAddK(t, bk, 5)

	a := core.NewAsm(bk)
	a.SetName("caller")
	args, err := a.Begin("%i", core.NonLeaf)
	if err != nil {
		t.Fatal(err)
	}
	x, err := a.GetReg(core.Var)
	if err != nil {
		t.Fatal(err)
	}
	a.Movi(x, args[0])
	a.StartCall("%i")
	a.SetArg(0, x)
	a.CallFunc(callee)
	r, err := a.GetReg(core.Var)
	if err != nil {
		t.Fatal(err)
	}
	a.RetVal(core.TypeI, r)
	a.Addi(r, r, x)
	a.Reti(r)
	caller, err := a.End()
	if err != nil {
		t.Fatal(err)
	}

	errs := m.InstallBatch(context.Background(), 2, []*core.Func{caller, callee})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	// caller(x) = callee(x) + x = (x + 5) + x.
	got, err := m.Call(caller, core.I(10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 25 {
		t.Fatalf("caller(10) = %d, want 25", got.Int())
	}
}

// TestInstallBatchOutOfBatchCallee covers the phase-1 nested install: a
// batch member that references a function outside the batch.
func TestInstallBatchOutOfBatchCallee(t *testing.T) {
	bk, m := newMips()
	callee := buildAddK(t, bk, 2)

	a := core.NewAsm(bk)
	a.SetName("outercaller")
	args, err := a.Begin("%i", core.NonLeaf)
	if err != nil {
		t.Fatal(err)
	}
	a.StartCall("%i")
	a.SetArg(0, args[0])
	a.CallFunc(callee)
	r, err := a.GetReg(core.Var)
	if err != nil {
		t.Fatal(err)
	}
	a.RetVal(core.TypeI, r)
	a.Reti(r)
	caller, err := a.End()
	if err != nil {
		t.Fatal(err)
	}

	errs := m.InstallBatch(context.Background(), 1, []*core.Func{caller})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !m.Installed(callee) {
		t.Fatal("out-of-batch callee not installed")
	}
	got, err := m.Call(caller, core.I(40))
	if err != nil || got.Int() != 42 {
		t.Fatalf("caller(40) = %v, %v", got, err)
	}
}
