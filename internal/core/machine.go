package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/mem"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/verify"
)

// CPU is the execution substrate for one target: a cycle-counted simulator
// that runs the binary code VCODE emits.  Register access uses the same
// Reg naming as the assembler (GPR/FPR).
type CPU interface {
	// PC returns the current program counter.
	PC() uint64
	// SetPC jumps the simulator (clearing any pending delay slot).
	SetPC(pc uint64)
	// Reg reads an integer register's raw 64-bit contents.
	Reg(r Reg) uint64
	// SetReg writes an integer register.
	SetReg(r Reg, v uint64)
	// FReg reads a floating-point register: IEEE-754 single bits
	// (double=false, low 32 bits) or double bits (double=true).  The
	// width matters on targets that pair FP registers (SPARC).
	FReg(r Reg, double bool) uint64
	// SetFReg writes a floating-point register.
	SetFReg(r Reg, v uint64, double bool)
	// Step executes one instruction (including any delay slot
	// bookkeeping) and returns an error on a fault.
	Step() error
	// Cycles returns the cycle count including memory stalls.
	Cycles() uint64
	// Insns returns the retired instruction count.
	Insns() uint64
	// ResetStats zeroes both counters.
	ResetStats()
}

// SamplingCPU is implemented by simulators that can invoke a hook with
// the pre-execution program counter every fixed number of retired
// instructions — the substrate of the PC-sampling profiler.  The hook
// runs inside Step, so it must not call back into the Machine's locked
// API (the lock-free FuncSpans/SymbolizePC are safe).
type SamplingCPU interface {
	// SetSampler installs fn to fire every stride instructions; nil fn
	// or zero stride disables sampling.
	SetSampler(fn func(pc uint64), stride uint64)
}

// SetSampler installs (or, with a nil fn, removes) a PC-sampling hook on
// the machine's simulator.  It reports an error if the CPU does not
// implement SamplingCPU.
func (m *Machine) SetSampler(fn func(pc uint64), stride uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sc, ok := m.cpu.(SamplingCPU)
	if !ok {
		return fmt.Errorf("machine: %s CPU does not support PC sampling", m.backend.Name())
	}
	sc.SetSampler(fn, stride)
	return nil
}

// EdgeProfilingCPU is implemented by simulators that can invoke a hook
// with (branch PC, taken) at conditional-branch resolution, countdown-
// gated so only every strideth branch event fires — the substrate of
// basic-block edge profiling.  Like the sampling hook, it runs inside
// Step and must not call back into the Machine's locked API (the
// lock-free FuncSpans/SymbolizePC/InCodeRegion are safe).
type EdgeProfilingCPU interface {
	// SetEdgeProbe installs fn to fire every stride conditional-branch
	// resolutions; nil fn or zero stride disables the probe.
	SetEdgeProbe(fn func(pc uint64, taken bool), stride uint64)
}

// SetEdgeProbe installs (or, with a nil fn, removes) a branch edge probe
// on the machine's simulator.  It reports an error if the CPU does not
// implement EdgeProfilingCPU.
func (m *Machine) SetEdgeProbe(fn func(pc uint64, taken bool), stride uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ec, ok := m.cpu.(EdgeProfilingCPU)
	if !ok {
		return fmt.Errorf("machine: %s CPU does not support edge profiling", m.backend.Name())
	}
	ec.SetEdgeProbe(fn, stride)
	return nil
}

// TrapHandler implements a runtime helper in the host: it reads arguments
// from the CPU per the emulation convention and writes only the result
// register.
type TrapHandler func(c CPU, m *mem.Memory)

// Machine binds a backend, its CPU simulator and a simulated memory into a
// loader and call harness for generated functions.  It plays the role of
// the linking half of v_end plus the surrounding process: code placement,
// relocation, runtime helper symbols and the call trampoline.
//
// A Machine is safe for concurrent use: installs, uninstalls, allocations
// and calls are serialized by an internal lock (there is one simulated CPU,
// so calls cannot overlap in any case).
type Machine struct {
	mu      sync.Mutex
	backend Backend
	cpu     CPU
	mem     *mem.Memory

	syms  map[string]uint64
	traps map[uint64]TrapHandler

	codeBase uint64
	codeNext uint64
	// codeNextPub mirrors codeNext for lock-free readers (InCodeRegion,
	// called from sampling hooks inside the simulator step loop); it is
	// refreshed after every mutation of codeNext under mu.
	codeNextPub atomic.Uint64
	// freeCode holds code regions returned by Uninstall: sorted by
	// address, coalesced, and all strictly below codeNext.  Installs are
	// served first-fit from here before bumping codeNext.
	freeCode []codeRegion
	heapNext uint64
	heapEnd  uint64
	stackTop uint64
	haltAddr uint64
	trapNext uint64
	trapEnd  uint64

	// MaxSteps bounds a single Call (guards against runaway generated
	// code in tests).
	MaxSteps uint64

	// verifyOff disables the pre-install code verifier (SetVerify).
	verifyOff bool

	// spanList maps installed code regions (and trap vectors) to names;
	// sorted by Start, maintained under mu.  spans is its immutable
	// published copy, rebuilt copy-on-write after every change so the
	// PC-sampling profiler can symbolize from inside the simulator step
	// loop without taking mu (which the run loop already holds).
	spanList []FuncSpan
	spans    atomic.Pointer[[]FuncSpan]

	// tstats caches the telemetry instrument bundle for this backend
	// (resolved lazily on the first enabled-telemetry operation).
	tstats *telemetry.CodegenStats

	// tcpu is the simulator's threaded engine, or nil if the CPU only
	// implements Step; engine selects which one Call uses (engine.go).
	// bodies holds the predecoded body per installed function, sorted by
	// Base; lastBody is a single-entry dispatch cache.  All under mu.
	tcpu     ThreadedCPU
	engine   Engine
	bodies   []*exec.Body
	lastBody *exec.Body

	trace io.Writer
}

// FuncSpan maps one installed code region — or a trap vector — to a
// symbolic name: the install-time address map behind SymbolizePC and the
// PC-sampling profiler.
type FuncSpan struct {
	// Start and End bound the region as [Start, End).
	Start, End uint64
	// Name is the installed function's name, or the trap symbol.
	Name string
}

// Memory layout of a Machine (all regions within the simulated memory):
//
//	0x0000_0040 .. 0x0000_0fff   trap vectors (halt, runtime helpers)
//	0x0000_1000 ..               installed code, growing up
//	memsize/2   ..               heap (Machine.Alloc), growing up
//	memsize     ..               stack, growing down
const (
	trapBase = 0x40
	codeBase = 0x1000
)

// NewMachine builds a machine around a backend, a CPU simulator for that
// backend's ISA, and a memory.  The standard runtime helpers (integer
// division/remainder emulation) are pre-registered.
func NewMachine(b Backend, cpu CPU, m *mem.Memory) *Machine {
	mc := &Machine{
		backend:  b,
		cpu:      cpu,
		mem:      m,
		syms:     make(map[string]uint64),
		traps:    make(map[uint64]TrapHandler),
		codeBase: codeBase,
		codeNext: codeBase,
		heapNext: m.Size() / 2,
		heapEnd:  m.Size() - 1<<20,
		stackTop: m.Size() - 64, // a little headroom above SP
		trapNext: trapBase + 16,
		trapEnd:  codeBase,
		MaxSteps: 1 << 28,
	}
	mc.haltAddr = trapBase
	if t, ok := cpu.(ThreadedCPU); ok {
		mc.tcpu = t
		mc.engine = EngineThreaded
	}
	mc.codeNextPub.Store(mc.codeNext)
	mc.spanList = append(mc.spanList, FuncSpan{Start: trapBase, End: trapBase + 16, Name: "<halt>"})
	registerDivHelpers(mc)
	mc.publishSpans()
	return mc
}

// stats lazily resolves the machine's telemetry handles (callers hold mu
// or are otherwise serialized; NewMachine runs before any concurrency).
func (m *Machine) stats() *telemetry.CodegenStats {
	if m.tstats == nil {
		m.tstats = telemetry.ForBackend(m.backend.Name())
	}
	return m.tstats
}

// Backend returns the machine's target port.
func (m *Machine) Backend() Backend { return m.backend }

// CPU returns the simulator (for cycle/instruction statistics).
func (m *Machine) CPU() CPU { return m.cpu }

// Mem returns the simulated memory.
func (m *Machine) Mem() *mem.Memory { return m.mem }

// DefineTrap registers a runtime helper under a symbol name, callable from
// generated code via CallSym.  The handler must follow the emulation
// convention: read arguments from the argument registers, write only the
// return register (the paper's emulation routines preserve all
// caller-saved registers, which lets VCODE call them even from leaves).
func (m *Machine) DefineTrap(sym string, h TrapHandler) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.syms[sym]; dup {
		return fmt.Errorf("machine: symbol %q already defined", sym)
	}
	if m.trapNext+16 > m.trapEnd {
		return fmt.Errorf("machine: trap table full")
	}
	addr := m.trapNext
	m.trapNext += 16
	m.syms[sym] = addr
	m.traps[addr] = h
	m.addSpan(FuncSpan{Start: addr, End: addr + 16, Name: sym})
	return nil
}

// addSpan inserts s into the address map (sorted by Start) and publishes
// a fresh immutable snapshot.  Caller holds mu (or is pre-concurrency).
func (m *Machine) addSpan(s FuncSpan) {
	i := sort.Search(len(m.spanList), func(i int) bool { return m.spanList[i].Start >= s.Start })
	m.spanList = append(m.spanList, FuncSpan{})
	copy(m.spanList[i+1:], m.spanList[i:])
	m.spanList[i] = s
	m.publishSpans()
}

// removeSpan drops the span starting at start.  Caller holds mu.
func (m *Machine) removeSpan(start uint64) {
	for i, s := range m.spanList {
		if s.Start == start {
			m.spanList = append(m.spanList[:i], m.spanList[i+1:]...)
			m.publishSpans()
			return
		}
	}
}

// pruneSpans drops every code span at or above limit (Release reclaims
// wholesale; trap vectors live below codeBase and are never pruned).
// Caller holds mu.
func (m *Machine) pruneSpans(limit uint64) {
	kept := m.spanList[:0]
	for _, s := range m.spanList {
		if s.Start >= m.codeBase && s.Start >= limit {
			continue
		}
		kept = append(kept, s)
	}
	m.spanList = kept
	m.publishSpans()
}

func (m *Machine) publishSpans() {
	cp := append([]FuncSpan(nil), m.spanList...)
	m.spans.Store(&cp)
}

// FuncSpans returns the current install-time address map as an immutable,
// Start-sorted slice.  It is lock-free and safe to call from a sampling
// hook running inside the simulator.
func (m *Machine) FuncSpans() []FuncSpan {
	if p := m.spans.Load(); p != nil {
		return *p
	}
	return nil
}

// InCodeRegion reports whether pc falls inside the machine's code arena
// (at or above the code base and below the allocation high-water mark).
// Lock-free; safe from a sampling hook.  A PC that is in the region but
// fails SymbolizePC points at code that was installed and since evicted.
func (m *Machine) InCodeRegion(pc uint64) bool {
	return pc >= m.codeBase && pc < m.codeNextPub.Load()
}

// SymbolizePC resolves a program counter to the name of the installed
// function (or trap vector) containing it.  Lock-free; safe from a
// sampling hook.
func (m *Machine) SymbolizePC(pc uint64) (string, bool) {
	spans := m.FuncSpans()
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Start > pc })
	if i > 0 && pc < spans[i-1].End {
		return spans[i-1].Name, true
	}
	return "", false
}

// DefineSym binds a symbol to an arbitrary address (e.g. a data table the
// generated code should reference).
func (m *Machine) DefineSym(sym string, addr uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.syms[sym]; dup {
		return fmt.Errorf("machine: symbol %q already defined", sym)
	}
	m.syms[sym] = addr
	return nil
}

// Mark captures the machine's code and heap allocation state so that
// everything installed or allocated afterwards can be reclaimed in one
// Release — the arena discipline behind the paper's observation that a
// dynamic function's storage "is easily reclaimed when the function is
// deallocated" (§5.2).
type Mark struct {
	code, heap uint64
}

// Mark returns the current allocation watermark.
func (m *Machine) Mark() Mark {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Mark{code: m.codeNext, heap: m.heapNext}
}

// Release reclaims all code and heap space allocated since mk was taken.
// Functions installed after the mark become invalid and must not be
// called or re-installed.  Mark/Release is a stack discipline; it and the
// per-function Uninstall path are alternatives — free regions above the
// mark are simply forgotten (the bump pointer subsumes them).
func (m *Machine) Release(mk Mark) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mk.code >= m.codeBase && mk.code <= m.codeNext {
		m.codeNext = mk.code
		kept := m.freeCode[:0]
		for _, r := range m.freeCode {
			if r.addr >= m.codeNext {
				continue
			}
			if r.addr+r.size > m.codeNext {
				r.size = m.codeNext - r.addr
			}
			kept = append(kept, r)
		}
		m.freeCode = kept
		m.codeNextPub.Store(m.codeNext)
		m.pruneSpans(m.codeNext)
		m.dropBodies(m.codeNext, m.mem.Size()-m.codeNext)
	}
	if mk.heap <= m.heapNext && mk.heap >= m.mem.Size()/2 {
		m.heapNext = mk.heap
	}
}

// Alloc reserves n bytes of heap, aligned to at least 16 bytes, and
// returns the simulated address.
func (m *Machine) Alloc(n int) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr := (m.heapNext + 15) &^ 15
	if addr+uint64(n) > m.heapEnd {
		return 0, fmt.Errorf("machine: heap exhausted (%d bytes requested)", n)
	}
	m.heapNext = addr + uint64(n)
	return addr, nil
}

// codeRegion is a span of reclaimable simulated code memory.
type codeRegion struct {
	addr, size uint64
}

// sumWords fingerprints machine code: four interleaved FNV-1a lanes
// folded at the end.  The lanes break the serial xor-multiply dependency
// chain — this runs on every call of an installed function (the
// mutation-after-install guard in installPrecheck), so its latency is
// part of the warm call path.
func sumWords(words []uint32) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h0 := uint64(offset)
	h1 := uint64(offset) ^ 0x9e3779b97f4a7c15
	h2 := uint64(offset) ^ 0xc2b2ae3d27d4eb4f
	h3 := uint64(offset) ^ 0x165667b19e3779f9
	i := 0
	for ; i+4 <= len(words); i += 4 {
		h0 = (h0 ^ uint64(words[i])) * prime
		h1 = (h1 ^ uint64(words[i+1])) * prime
		h2 = (h2 ^ uint64(words[i+2])) * prime
		h3 = (h3 ^ uint64(words[i+3])) * prime
	}
	for ; i < len(words); i++ {
		h0 = (h0 ^ uint64(words[i])) * prime
	}
	return ((h0*prime^h1)*prime^h2)*prime ^ h3
}

// Install places f (and, recursively, every generated function it
// references) into simulated code memory and resolves its relocations.
// Re-installing an installed, unmodified function is a no-op; if the
// function's code was mutated since it was installed, or it is installed
// on a different Machine, Install reports an error instead of silently
// running stale code.
func (m *Machine) Install(f *Func) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.install(f)
}

// Installed reports whether f is currently installed on this machine (a
// function released wholesale via Release still claims to be installed —
// Mark/Release does not track individual functions).
func (m *Machine) Installed(f *Func) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return f.installed && f.owner == m
}

// Uninstall removes an installed function, returning its code region to a
// free list that later installs reuse — the per-function reclamation path
// a cache with out-of-order eviction needs, complementing the paper's
// stack-style Mark/Release arena (§5.2).  Only f's own words are freed;
// functions it references stay installed.  The caller must ensure nothing
// resident still jumps into f.  The function itself stays valid and may be
// installed again (here or on another machine).
func (m *Machine) Uninstall(f *Func) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !f.installed {
		return fmt.Errorf("machine: uninstall %s: not installed", f.Name)
	}
	if f.owner != m {
		return fmt.Errorf("machine: uninstall %s: installed on a different machine", f.Name)
	}
	m.dropBodies(f.addr, f.codeSize)
	m.freeRegion(codeRegion{addr: f.addr, size: f.codeSize})
	m.removeSpan(f.addr)
	if telemetry.Enabled() {
		m.stats().Uninstalls.Inc()
		telemetry.TraceRecord(telemetry.PhaseEvict, f.BackendName, f.Name, 0, int64(f.codeSize))
	}
	if trace.Enabled() {
		trace.Record(trace.KindEvict, f.BackendName, f.Name, f.lifecycleFlow(),
			time.Now(), 0, trace.Attrs{Bytes: int64(f.codeSize)})
	}
	f.addr = 0
	f.installed = false
	f.owner = nil
	f.codeSize = 0
	f.sumValid = false
	return nil
}

// ArenaStats is a point-in-time view of one machine's memory arenas —
// the per-shard residency snapshot a multi-arena server reports and
// sizes admission against.
type ArenaStats struct {
	// CodeBytesResident is installed code occupying the code region
	// (allocated span minus freed holes); CodeBytesHighWater is the
	// bump-pointer high-water mark including holes.
	CodeBytesResident, CodeBytesHighWater uint64
	// FreeRegions is the current free-list length (fragmentation signal).
	FreeRegions int
	// HeapBytesUsed is bump-allocated heap (dispatch tables, data
	// sections); heap is reclaimed only by Mark/Release.
	HeapBytesUsed uint64
	// Funcs is the number of installed code spans (trap vectors excluded).
	Funcs int
}

// ArenaStats captures the machine's current arena occupancy.
func (m *Machine) ArenaStats() ArenaStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var free uint64
	for _, r := range m.freeCode {
		free += r.size
	}
	funcs := 0
	for _, s := range m.spanList {
		if s.Start >= m.codeBase {
			funcs++
		}
	}
	return ArenaStats{
		CodeBytesResident:  m.codeNext - m.codeBase - free,
		CodeBytesHighWater: m.codeNext - m.codeBase,
		FreeRegions:        len(m.freeCode),
		HeapBytesUsed:      m.heapNext - m.mem.Size()/2,
		Funcs:              funcs,
	}
}

// CodeBytesResident returns the installed code bytes currently occupying
// the code region (allocated span minus freed holes).
func (m *Machine) CodeBytesResident() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var free uint64
	for _, r := range m.freeCode {
		free += r.size
	}
	return m.codeNext - m.codeBase - free
}

// freeRegion inserts r into the free list sorted by address, coalescing
// with its neighbours, then gives back any free tail to the bump pointer.
func (m *Machine) freeRegion(r codeRegion) {
	i := 0
	for i < len(m.freeCode) && m.freeCode[i].addr < r.addr {
		i++
	}
	m.freeCode = append(m.freeCode, codeRegion{})
	copy(m.freeCode[i+1:], m.freeCode[i:])
	m.freeCode[i] = r
	// Coalesce with the successor, then the predecessor.
	if i+1 < len(m.freeCode) && r.addr+r.size == m.freeCode[i+1].addr {
		m.freeCode[i].size += m.freeCode[i+1].size
		m.freeCode = append(m.freeCode[:i+1], m.freeCode[i+2:]...)
	}
	if i > 0 && m.freeCode[i-1].addr+m.freeCode[i-1].size == m.freeCode[i].addr {
		m.freeCode[i-1].size += m.freeCode[i].size
		m.freeCode = append(m.freeCode[:i], m.freeCode[i+1:]...)
	}
	if n := len(m.freeCode); n > 0 {
		if top := m.freeCode[n-1]; top.addr+top.size == m.codeNext {
			m.codeNext = top.addr
			m.freeCode = m.freeCode[:n-1]
			m.codeNextPub.Store(m.codeNext)
		}
	}
}

// allocCode reserves a 16-aligned code span: first fit from the free list,
// else the bump pointer.
func (m *Machine) allocCode(size uint64) (uint64, error) {
	for i, r := range m.freeCode {
		if r.size >= size {
			addr := r.addr
			if r.size == size {
				m.freeCode = append(m.freeCode[:i], m.freeCode[i+1:]...)
			} else {
				m.freeCode[i] = codeRegion{addr: r.addr + size, size: r.size - size}
			}
			return addr, nil
		}
	}
	addr := (m.codeNext + 15) &^ 15
	end := addr + size
	if end > m.heapNext-(m.heapEnd-m.heapNext) && end > m.mem.Size()/2 {
		return 0, fmt.Errorf("machine: code region exhausted")
	}
	m.codeNext = end
	m.codeNextPub.Store(m.codeNext)
	return addr, nil
}

// installSize is the 16-aligned code-region reservation f needs.
func installSize(f *Func) uint64 { return (uint64(4*len(f.Words)) + 15) &^ 15 }

// installPrecheck handles the cases where no code placement should
// happen: f is already installed here (possibly mutated since), installed
// elsewhere, or targets the wrong backend.  done means install must
// return err (nil for the benign already-installed case) without placing
// code.  Caller holds mu.
func (m *Machine) installPrecheck(f *Func) (done bool, err error) {
	if f == nil {
		return true, fmt.Errorf("machine: install of nil function")
	}
	if f.installed {
		if f.owner != m {
			return true, fmt.Errorf("machine: %s is installed on a different machine", f.Name)
		}
		if f.sumValid && sumWords(f.Words) != f.sum {
			return true, fmt.Errorf("machine: %s was mutated after install; Uninstall it first", f.Name)
		}
		return true, nil
	}
	if f.BackendName != m.backend.Name() {
		return true, fmt.Errorf("machine: %s code installed on %s machine", f.BackendName, m.backend.Name())
	}
	return false, nil
}

// spanName labels f's code region in the address map.
func (f *Func) spanName() string {
	if f.Name == "" {
		return fmt.Sprintf("func@%#x", f.addr)
	}
	return f.Name
}

func (m *Machine) install(f *Func) error {
	if done, err := m.installPrecheck(f); done || err != nil {
		return err
	}
	var start time.Time
	if telemetry.Enabled() || trace.Enabled() {
		start = time.Now()
	}
	size := installSize(f)
	addr, err := m.allocCode(size)
	if err != nil {
		return err
	}
	f.addr = addr
	f.installed = true
	f.owner = m
	f.codeSize = size
	f.sumValid = false
	resolved, err := m.resolveRelocs(f, nil)
	var image []byte
	if err == nil {
		image, err = m.linkAndVerify(f, resolved, m.validCallTarget, m.verifyOff)
	}
	if err == nil {
		err = m.mem.WriteBytes(f.addr, image)
	}
	if err != nil {
		// Roll back so a rejected function neither leaks code space nor
		// claims to be installed (a later retry — e.g. after the missing
		// symbol is defined — starts clean).
		m.freeRegion(codeRegion{addr: f.addr, size: f.codeSize})
		f.addr = 0
		f.installed = false
		f.owner = nil
		f.codeSize = 0
		return err
	}
	f.sum = sumWords(f.Words)
	f.sumValid = true
	m.addSpan(FuncSpan{Start: addr, End: addr + size, Name: f.spanName()})
	if m.tcpu != nil {
		// f.Words were patched in place by linkAndVerify, so they match
		// the installed image exactly.
		m.attachBody(m.tcpu.Predecode(f.Words, f.addr))
	}
	if !start.IsZero() {
		// Nested installs (referenced functions) are timed individually;
		// the parent's duration includes its children.
		d := time.Since(start)
		if telemetry.Enabled() {
			st := m.stats()
			st.InstallNS.Observe(uint64(d))
			st.Installs.Inc()
			telemetry.TraceRecord(telemetry.PhaseInstall, f.BackendName, f.Name, d, int64(size))
		}
		if trace.Enabled() {
			trace.Record(trace.KindInstall, f.BackendName, f.Name, f.lifecycleFlow(),
				start, d, trace.Attrs{Bytes: int64(size)})
		}
	}
	return nil
}

// resolvedReloc is one relocation with its target address pinned — the
// part of linking that needs the machine's symbol table and therefore the
// lock.
type resolvedReloc struct {
	kind   RelocKind
	sites  []int
	target uint64
}

// resolveRelocs pins every relocation of f to an absolute target address,
// recursively installing referenced functions that are not placed yet.
// assigned maps batch members to their pre-reserved base addresses so
// intra-batch references resolve before the members are committed.
// Caller holds mu.
func (m *Machine) resolveRelocs(f *Func, assigned map[*Func]uint64) ([]resolvedReloc, error) {
	if len(f.Relocs) == 0 {
		return nil, nil
	}
	out := make([]resolvedReloc, 0, len(f.Relocs))
	for _, r := range f.Relocs {
		var target uint64
		switch {
		case r.Target != nil:
			base, ok := assigned[r.Target]
			if !ok {
				if err := m.install(r.Target); err != nil {
					return nil, err
				}
				base = r.Target.addr
			}
			switch {
			case r.Kind == RelocCall:
				target = base + 4*uint64(r.Target.Entry)
			case r.Addend == relocEntry:
				target = base + 4*uint64(r.Target.Entry)
			default:
				target = base + uint64(r.Addend)
			}
		default:
			a, ok := m.syms[r.Sym]
			if !ok {
				return nil, fmt.Errorf("machine: undefined symbol %q in %s", r.Sym, f.Name)
			}
			target = a + uint64(r.Addend)
		}
		out = append(out, resolvedReloc{kind: r.Kind, sites: r.Sites, target: target})
	}
	return out, nil
}

// linkAndVerify patches f's words with the resolved relocation targets,
// runs the pre-install verifier, and encodes the finished image in target
// byte order.  It reads only f, the stateless backend, and the supplied
// extern predicate — no machine state — so batched installs run it
// without the machine lock, in parallel across functions.
func (m *Machine) linkAndVerify(f *Func, resolved []resolvedReloc, extern func(uint64) bool, verifyOff bool) ([]byte, error) {
	buf := &Buf{w: f.Words}
	for _, r := range resolved {
		var err error
		switch r.kind {
		case RelocCall:
			err = m.backend.PatchCall(buf, r.sites, f.addr, r.target)
		case RelocAddr:
			err = m.backend.PatchAddr(buf, r.sites, r.target)
		}
		if err != nil {
			return nil, fmt.Errorf("machine: relocating %s: %w", f.Name, err)
		}
	}

	if !verifyOff {
		if err := m.verifyFunc(f, extern); err != nil {
			return nil, err
		}
	}

	// Encode the finished words in target byte order.
	image := make([]byte, 4*len(f.Words))
	big := m.backend.BigEndian()
	for i, w := range f.Words {
		if big {
			image[4*i] = byte(w >> 24)
			image[4*i+1] = byte(w >> 16)
			image[4*i+2] = byte(w >> 8)
			image[4*i+3] = byte(w)
		} else {
			image[4*i] = byte(w)
			image[4*i+1] = byte(w >> 8)
			image[4*i+2] = byte(w >> 16)
			image[4*i+3] = byte(w >> 24)
		}
	}
	return image, nil
}

// externSnapshot captures validCallTarget's answer set — the halt vector,
// the trap table, and the current code-region bounds — so batch verifiers
// can consult it without holding mu.  Caller holds mu; the snapshot is
// taken after the batch reservation, so intra-batch calls are in range.
func (m *Machine) externSnapshot() func(uint64) bool {
	traps := make(map[uint64]struct{}, len(m.traps))
	for a := range m.traps {
		traps[a] = struct{}{}
	}
	halt, base, next := m.haltAddr, m.codeBase, m.codeNext
	return func(addr uint64) bool {
		if addr == halt {
			return true
		}
		if _, ok := traps[addr]; ok {
			return true
		}
		return addr >= base && addr < next && addr%4 == 0
	}
}

// reflectDuplicates copies the first instance's outcome onto any
// duplicate *Func entries in a batch.
func reflectDuplicates(fns []*Func, firstIdx map[*Func]int, errs []error) {
	for i, f := range fns {
		if f == nil {
			continue
		}
		if j, ok := firstIdx[f]; ok && j != i {
			errs[i] = errs[j]
		}
	}
}

// InstallBatch installs fns in one batched, verification-included install
// with a single contiguous arena reservation covering the whole batch.
// The work is split so the expensive middle runs outside the lock:
//
//  1. (locked) prechecks, one contiguous code reservation, address
//     assignment, and relocation-target resolution for every function;
//  2. (unlocked) linking, verification and image encoding, fanned across
//     min(parallelism, len(fns)) goroutines — pure per-function work
//     (parallelism <= 0 means GOMAXPROCS);
//  3. (locked) the commit: images are copied into simulated memory and
//     the address map is sorted and published once for the whole batch.
//
// The returned slice has one error per input (nil on success).  A
// rejected function's sub-reservation returns to the free list while its
// siblings install.  If ctx is canceled before the commit, the whole
// reservation is released, no function from the batch becomes installed,
// and every pending item reports the context's error — there are no
// half-installed bodies.
//
// The caller must own fns exclusively for the duration of the call (no
// concurrent Install or Call on the same *Func values).  Functions
// already installed on m are tolerated and report success.
func (m *Machine) InstallBatch(ctx context.Context, parallelism int, fns []*Func) []error {
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var start time.Time
	if telemetry.Enabled() || trace.Enabled() {
		start = time.Now()
	}

	type item struct {
		f        *Func
		idx      int // index into fns/errs
		size     uint64
		resolved []resolvedReloc
		image    []byte
		body     *exec.Body // predecoded in phase 2, attached in phase 3
		linkNS   int64
		skip     bool // phase-1 failure; later phases pass it over
	}

	// --- phase 1 (locked): reserve, assign, resolve ---
	m.mu.Lock()
	items := make([]*item, 0, len(fns))
	firstIdx := make(map[*Func]int, len(fns))
	assigned := make(map[*Func]uint64, len(fns))
	var total uint64
	for i, f := range fns {
		if f != nil {
			if _, dup := firstIdx[f]; dup {
				continue // reflectDuplicates mirrors the first outcome
			}
			firstIdx[f] = i
		}
		if done, err := m.installPrecheck(f); done || err != nil {
			errs[i] = err
			continue
		}
		size := installSize(f)
		assigned[f] = total // offset within the reservation, for now
		items = append(items, &item{f: f, idx: i, size: size})
		total += size
	}
	if len(items) == 0 {
		m.mu.Unlock()
		reflectDuplicates(fns, firstIdx, errs)
		return errs
	}
	base, err := m.allocCode(total)
	if err != nil {
		// The contiguous reservation failed (fragmentation, or a batch
		// larger than the remaining arena): fall back to per-function
		// placement under this same lock so individually fitting
		// functions still install.
		for _, it := range items {
			errs[it.idx] = m.install(it.f)
		}
		m.mu.Unlock()
		reflectDuplicates(fns, firstIdx, errs)
		return errs
	}
	for _, it := range items {
		f := it.f
		f.addr = base + assigned[f]
		assigned[f] = f.addr
		f.owner = m
		f.codeSize = it.size
		f.sumValid = false
	}
	for _, it := range items {
		var rerr error
		if it.resolved, rerr = m.resolveRelocs(it.f, assigned); rerr != nil {
			errs[it.idx] = rerr
			it.skip = true
		}
	}
	extern := m.externSnapshot()
	verifyOff := m.verifyOff
	m.mu.Unlock()

	// --- phase 2 (unlocked): link + verify + encode, fanned out ---
	if ctx.Err() == nil {
		n := parallelism
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > len(items) {
			n = len(items)
		}
		work := make(chan *item)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := range work {
					if ctx.Err() != nil {
						continue // the commit below reports the ctx error
					}
					t0 := time.Now()
					image, lerr := m.linkAndVerify(it.f, it.resolved, extern, verifyOff)
					it.linkNS = time.Since(t0).Nanoseconds()
					if lerr != nil {
						errs[it.idx] = lerr // each item owns only its slot
						it.skip = true
						continue
					}
					it.image = image
					if m.tcpu != nil {
						// Predecode is pure, so it parallelizes with the
						// linking fan-out; the body is attached under the
						// commit lock in phase 3.
						it.body = m.tcpu.Predecode(it.f.Words, it.f.addr)
					}
				}
			}()
		}
		for _, it := range items {
			if !it.skip {
				work <- it
			}
		}
		close(work)
		wg.Wait()
	}

	// --- phase 3 (locked): commit or abort ---
	m.mu.Lock()
	if cerr := ctx.Err(); cerr != nil {
		// Abort: the whole reservation is returned and nothing from this
		// batch becomes installed or visible.
		for _, it := range items {
			f := it.f
			f.addr = 0
			f.owner = nil
			f.codeSize = 0
		}
		m.freeRegion(codeRegion{addr: base, size: total})
		m.mu.Unlock()
		for _, it := range items {
			if errs[it.idx] == nil {
				errs[it.idx] = cerr
			}
		}
		reflectDuplicates(fns, firstIdx, errs)
		return errs
	}
	installed := 0
	var linkTotal int64
	for _, it := range items {
		f := it.f
		if !it.skip && errs[it.idx] == nil {
			errs[it.idx] = m.mem.WriteBytes(f.addr, it.image)
		}
		if errs[it.idx] != nil {
			m.freeRegion(codeRegion{addr: f.addr, size: it.size})
			f.addr = 0
			f.owner = nil
			f.codeSize = 0
			continue
		}
		f.sum = sumWords(f.Words)
		f.sumValid = true
		f.installed = true
		m.spanList = append(m.spanList, FuncSpan{Start: f.addr, End: f.addr + it.size, Name: f.spanName()})
		m.attachBody(it.body)
		installed++
		linkTotal += it.linkNS
	}
	if installed > 0 {
		// One sort + one copy-on-write publication for the whole batch —
		// the amortization a per-function install cannot have.
		sort.Slice(m.spanList, func(i, j int) bool { return m.spanList[i].Start < m.spanList[j].Start })
		m.publishSpans()
	}
	m.mu.Unlock()

	if !start.IsZero() && installed > 0 {
		// Per-item install spans: the item's own (parallel) link + verify
		// + encode time plus an equal share of the locked phases.
		share := (time.Since(start).Nanoseconds() - linkTotal) / int64(installed)
		if share < 0 {
			share = 0
		}
		for _, it := range items {
			f := it.f
			if errs[it.idx] != nil {
				continue
			}
			d := time.Duration(it.linkNS + share)
			if telemetry.Enabled() {
				st := telemetry.ForBackend(f.BackendName)
				st.InstallNS.Observe(uint64(d))
				st.Installs.Inc()
				telemetry.TraceRecord(telemetry.PhaseInstall, f.BackendName, f.Name, d, int64(it.size))
			}
			if trace.Enabled() {
				trace.Record(trace.KindInstall, f.BackendName, f.Name, f.lifecycleFlow(),
					start, d, trace.Attrs{Bytes: int64(it.size)})
			}
		}
	}
	reflectDuplicates(fns, firstIdx, errs)
	return errs
}

// SetVerify enables or disables the pre-install code verifier.  It is on
// by default; benchmarks that install in a hot loop may turn it off.
func (m *Machine) SetVerify(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.verifyOff = !on
}

// verifyFunc runs the static verifier over f's relocated image.  extern
// answers out-of-function call-target queries: m.validCallTarget under
// the lock, or an externSnapshot closure from a lock-free batch phase.
// The function reads no mutable machine state (telemetry goes through
// the concurrency-safe ForBackend lookup), so batch installs call it
// from their parallel phase.
func (m *Machine) verifyFunc(f *Func, extern func(uint64) bool) error {
	var start time.Time
	if telemetry.Enabled() || trace.Enabled() {
		start = time.Now()
	}
	var prs []verify.PoolRef
	for _, r := range f.Relocs {
		if r.Kind == RelocAddr && r.Target == f && r.Addend != relocEntry {
			prs = append(prs, verify.PoolRef{Sites: r.Sites, Offset: r.Addend, Size: 8})
		}
	}
	ps := f.PoolStart
	if ps < f.Entry || ps > len(f.Words) {
		ps = len(f.Words)
	}
	err := verify.Verify(m.backend, &verify.Code{
		Name:      f.Name,
		Words:     f.Words,
		Base:      f.addr,
		Entry:     f.Entry,
		PoolStart: ps,
		PoolRefs:  prs,
	}, verify.Options{ExternTarget: extern})
	if !start.IsZero() {
		d := time.Since(start)
		if telemetry.Enabled() {
			telemetry.ForBackend(f.BackendName).VerifyNS.Observe(uint64(d))
			telemetry.TraceRecord(telemetry.PhaseVerify, f.BackendName, f.Name, d, int64(len(f.Words)))
		}
		if trace.Enabled() {
			verdict := "ok"
			if err != nil {
				verdict = "reject"
			}
			trace.Record(trace.KindVerify, f.BackendName, f.Name, f.lifecycleFlow(),
				start, d, trace.Attrs{N: int64(len(f.Words)), Verdict: verdict, Err: errText(err)})
		}
	}
	return err
}

// errText renders an error for a span attribute, bounded so one failure
// cannot bloat the ring.
func errText(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	if len(s) > 120 {
		s = s[:120]
	}
	return s
}

// validCallTarget reports whether an out-of-function call target is an
// address the machine can account for: the halt vector, a registered trap,
// or somewhere in the installed-code region.
func (m *Machine) validCallTarget(addr uint64) bool {
	if addr == m.haltAddr {
		return true
	}
	if _, ok := m.traps[addr]; ok {
		return true
	}
	return addr >= m.codeBase && addr < m.codeNext && addr%4 == 0
}

// CallOpts tunes the sandbox around one call.
type CallOpts struct {
	// Fuel bounds the number of simulated steps (instructions plus trap
	// dispatches) this call may consume; 0 means no per-call budget (the
	// machine-wide MaxSteps backstop still applies).  Exhaustion returns
	// an error wrapping ErrFuelExhausted.
	Fuel uint64
	// PollStride is how many steps run between context checks; 0 means
	// the default (1024).  Smaller strides bound cancellation latency
	// more tightly at a small dispatch cost.
	PollStride uint64
}

// Call installs f if needed, marshals args per the backend's default
// calling convention, runs the simulator until the function returns, and
// returns the typed result.
func (m *Machine) Call(f *Func, args ...Value) (Value, error) {
	return m.CallWith(context.Background(), CallOpts{}, f, args...)
}

// CallContext is Call with cancellation: the run loop polls ctx on a
// stride and returns ctx.Err() (wrapped) once the deadline passes or the
// context is canceled.
func (m *Machine) CallContext(ctx context.Context, f *Func, args ...Value) (Value, error) {
	return m.CallWith(ctx, CallOpts{}, f, args...)
}

// CallWith is the fully sandboxed call: context cancellation, a per-call
// fuel budget, trap-handler panic recovery, and a last-resort recover
// around the simulator itself.  Every failure surfaces as a typed error;
// the call never panics and never outlives ctx by more than one poll
// stride of simulated steps.
func (m *Machine) CallWith(ctx context.Context, opts CallOpts, f *Func, args ...Value) (Value, error) {
	v, _, err := m.CallWithStats(ctx, opts, f, args...)
	return v, err
}

// CallStats describes one completed (or failed) call's cost: the
// simulator's cycle and retired-instruction deltas for this call alone,
// and the host wall time including any install-on-demand.  Because the
// machine serializes calls internally, the deltas are exact per-call
// attributions — no stat reset (and no reset race) is needed.
type CallStats struct {
	Cycles, Insns uint64
	// Fuel is the step budget the call consumed (0 when unlimited or the
	// engine did not meter it) — the per-call cost a quota-billing layer
	// or a flight recorder attributes to the request.
	Fuel uint64
	Wall time.Duration
}

// CallWithStats is CallWith returning per-call simulator statistics
// alongside the result.
func (m *Machine) CallWithStats(ctx context.Context, opts CallOpts, f *Func, args ...Value) (Value, CallStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	cycles0, insns0 := m.cpu.Cycles(), m.cpu.Insns()
	v, fuelUsed, err := m.callLocked(ctx, opts, f, args)
	st := CallStats{
		Cycles: m.cpu.Cycles() - cycles0,
		Insns:  m.cpu.Insns() - insns0,
		Fuel:   fuelUsed,
		Wall:   time.Since(start),
	}
	if telemetry.Enabled() {
		ts := m.stats()
		ts.Calls.Inc()
		if err != nil {
			ts.CallErrors.Inc()
		}
		ts.CallNS.Observe(uint64(st.Wall))
		ts.SimInsns.Add(st.Insns)
		ts.SimCycles.Add(st.Cycles)
		telemetry.TraceRecordAt(start.Add(st.Wall), telemetry.PhaseCall, f.BackendName, f.Name, st.Wall, int64(st.Insns))
	}
	if trace.Enabled() {
		trace.Record(trace.KindCall, f.BackendName, f.Name, f.lifecycleFlow(),
			start, st.Wall, trace.Attrs{N: int64(st.Insns), Fuel: fuelUsed, Err: errText(err)})
	}
	return v, st, err
}

// callLocked is the hot body of a call: install-on-demand, argument
// marshaling, the simulator run, and result extraction.  It is split from
// CallWithStats so the wrapper's stats/telemetry bookkeeping closes over
// nothing — with ≤ callBufArgs arguments the per-call path does not
// allocate.  The second result is the simulated steps consumed (fuel).
// Caller holds mu.
func (m *Machine) callLocked(ctx context.Context, opts CallOpts, f *Func, args []Value) (Value, uint64, error) {
	if f == nil || !f.installed || f.owner != m {
		// Slow path: install-on-demand (or surface the nil/wrong-machine
		// error).  Already-resident functions skip install entirely: the
		// mutation fingerprint is verified on explicit Install, and a
		// call always executes the installed image, so a mutated Words
		// slice cannot affect it — re-hashing every call would put an
		// O(code size) scan on the warm path.
		if err := m.install(f); err != nil {
			return Value{}, 0, err
		}
	}
	if len(args) != len(f.Params) {
		return Value{}, 0, fmt.Errorf("machine: %s takes %d args, got %d", f.Name, len(f.Params), len(args))
	}
	conv := m.backend.DefaultConv()

	sp := m.stackTop
	var tbuf [callBufArgs]Type
	types := tbuf[:0]
	for i, a := range args {
		if a.T != f.Params[i] {
			return Value{}, 0, fmt.Errorf("machine: %s arg %d: have %s, want %s", f.Name, i, a.T, f.Params[i])
		}
		types = append(types, a.T)
	}
	var lbuf [callBufArgs]argLoc
	locs, stackBytes := conv.layoutArgs(types, lbuf[:0])
	if stackBytes > 0 {
		sp -= uint64(stackBytes)
	}
	if a := uint64(conv.StackAlign); a > 0 {
		sp &^= a - 1
	}
	for i, loc := range locs {
		if loc.reg != NoReg {
			if loc.t.IsFloat() {
				m.cpu.SetFReg(loc.reg, args[i].Bits, loc.t == TypeD)
			} else {
				m.cpu.SetReg(loc.reg, regBits(args[i], m.backend.PtrBytes()))
			}
			continue
		}
		sz := loc.t.Size(m.backend.PtrBytes())
		if err := m.mem.Store(sp+uint64(loc.stackOff), sz, args[i].Bits); err != nil {
			return Value{}, 0, err
		}
	}

	m.cpu.SetReg(conv.SP, sp)
	m.cpu.SetReg(conv.RA, m.retLinkValue(m.haltAddr))
	m.cpu.SetPC(f.EntryAddr())
	steps, err := m.run(ctx, opts, conv)
	if err != nil {
		return Value{}, steps, fmt.Errorf("machine: running %s: %w", f.Name, err)
	}

	return m.result(f.Result, conv), steps, nil
}

// callBufArgs is how many arguments the call path can marshal without
// heap allocation; calls with more still work, spilling to the heap.
const callBufArgs = 8

// retLinkValue converts a desired return target into the value stored in
// the link register (SPARC's call convention returns to RA+8).
func (m *Machine) retLinkValue(target uint64) uint64 {
	return target - uint64(m.backend.RetAddrOffset())
}

// SetTrace enables (or, with nil, disables) single-step execution
// tracing: every executed instruction is disassembled to w.  This is the
// debugging facility the paper lists as VCODE's most critical missing
// piece (§6.2: "debugging dynamically generated code currently requires
// stepping through it at the level of host-specific machine code") — the
// disassembler is generated alongside the encoders, so client-added
// instructions appear automatically.
func (m *Machine) SetTrace(w io.Writer) { m.trace = w }

func (m *Machine) run(ctx context.Context, opts CallOpts, conv *CallConv) (steps uint64, err error) {
	// Last line of defense: the simulators are panic-proofed and fuzzed,
	// but if one does panic the call must still return an error rather
	// than unwind the caller (who may be a cache or a server loop).
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{PC: m.cpu.PC(), Value: r}
		}
	}()
	budget := m.MaxSteps
	if opts.Fuel > 0 && opts.Fuel < budget {
		budget = opts.Fuel
	}
	stride := opts.PollStride
	if stride == 0 {
		stride = 1024
	}
	cancelable := ctx.Done() != nil
	for {
		pc := m.cpu.PC()
		if pc == m.haltAddr {
			return steps, nil
		}
		if cancelable && steps%stride == 0 {
			if err := ctx.Err(); err != nil {
				return steps, fmt.Errorf("after %d steps: %w", steps, err)
			}
		}
		// A trap dispatch consumes a step too, so a trap that returns to
		// itself burns fuel instead of spinning forever.
		steps++
		if steps > budget {
			return steps, fmt.Errorf("%w: %d steps (runaway generated code?)", ErrFuelExhausted, budget)
		}
		// Threaded fast path: dispatch through the predecoded body when
		// one covers pc.  It runs before the trap lookup because
		// attachBody refuses bodies overlapping a trap address — an
		// in-body pc is never a trap — and the per-iteration map probe
		// is measurable on the call hot path.  The budget check above
		// already admitted this instruction, so the body may retire up
		// to budget-steps+1 more before the loop must regain control;
		// with a cancelable context the slice is clamped to the poll
		// stride so cancellation latency stays bounded exactly as on the
		// Step path.  A pending delay slot (materialized by a previous
		// fuel-bounded exit), a fault-injection hook (which intercepts
		// per-instruction fetches the threaded engine does not perform),
		// and single-step tracing all force Step.
		if m.engine == EngineThreaded && m.tcpu != nil && m.trace == nil &&
			!m.tcpu.PendingDelay() && !m.mem.HasFaultHook() {
			if b := m.bodyAt(pc); b != nil {
				allow := budget - steps + 1
				if cancelable && allow > stride {
					allow = stride
				}
				n, rerr := m.tcpu.RunBody(b, b.IndexOf(pc), allow)
				if n > 0 {
					steps += n - 1
				}
				if rerr != nil {
					return steps, rerr
				}
				continue
			}
		}
		if h, ok := m.traps[pc]; ok {
			if m.trace != nil {
				fmt.Fprintf(m.trace, "%08x: <trap %s>\n", pc, m.symAt(pc))
			}
			if err := m.safeTrap(pc, h); err != nil {
				return steps, err
			}
			ret := m.cpu.Reg(conv.RA) + uint64(m.backend.RetAddrOffset())
			m.cpu.SetPC(ret)
			continue
		}
		if m.trace != nil {
			if w, err := m.mem.FetchWord(pc); err == nil {
				fmt.Fprintf(m.trace, "%08x: %08x  %s\n", pc, w, m.backend.Disasm(w, pc))
			}
			// Tracing needs per-instruction visibility: stay on Step.
			if err := m.cpu.Step(); err != nil {
				return steps, err
			}
			continue
		}
		if err := m.cpu.Step(); err != nil {
			return steps, err
		}
	}
}

// safeTrap runs one trap handler with panic isolation: a faulty runtime
// helper becomes a *TrapPanicError instead of unwinding the process.
func (m *Machine) safeTrap(pc uint64, h TrapHandler) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &TrapPanicError{Sym: m.symAt(pc), PC: pc, Value: r}
		}
	}()
	h(m.cpu, m.mem)
	return nil
}

func (m *Machine) symAt(addr uint64) string {
	for name, a := range m.syms {
		if a == addr {
			return name
		}
	}
	return "?"
}

func (m *Machine) result(t Type, conv *CallConv) Value {
	switch t {
	case TypeV:
		return Value{T: TypeV}
	case TypeF:
		return Value{T: TypeF, Bits: m.cpu.FReg(conv.RetFP, false) & 0xffffffff}
	case TypeD:
		return Value{T: TypeD, Bits: m.cpu.FReg(conv.RetFP, true)}
	case TypeI:
		return Value{T: t, Bits: uint64(int64(int32(m.cpu.Reg(conv.RetInt))))}
	case TypeU:
		return Value{T: t, Bits: uint64(uint32(m.cpu.Reg(conv.RetInt)))}
	default:
		bits := m.cpu.Reg(conv.RetInt)
		if m.backend.PtrBytes() == 4 {
			switch t {
			case TypeL:
				bits = uint64(int64(int32(bits)))
			case TypeUL, TypeP:
				bits = uint64(uint32(bits))
			}
		}
		return Value{T: t, Bits: bits}
	}
}

// regBits canonicalizes an argument value for the target's register width.
func regBits(v Value, ptrBytes int) uint64 {
	switch v.T {
	case TypeI:
		return uint64(int64(int32(v.Bits)))
	case TypeU:
		if ptrBytes == 8 {
			// 32-bit values are held sign-extended (canonical form).
			return uint64(int64(int32(v.Bits)))
		}
		return uint64(uint32(v.Bits))
	case TypeF:
		return v.Bits & 0xffffffff
	default:
		return v.Bits
	}
}

// registerDivHelpers installs the integer division/remainder emulation
// helpers used by targets without hardware divide (paper §5.2: "on
// machines that do not provide division in hardware, the VCODE integer
// division instructions require subroutine calls").
func registerDivHelpers(m *Machine) {
	conv := m.backend.DefaultConv()
	a0, a1, v0 := conv.IntArgs[0], conv.IntArgs[1], conv.RetInt
	type sem struct {
		sym string
		f   func(x, y uint64) uint64
	}
	div := func(signed bool, bits int, mod bool) func(x, y uint64) uint64 {
		return func(x, y uint64) uint64 {
			if signed {
				sx, sy := int64(x), int64(y)
				if bits == 32 {
					sx, sy = int64(int32(x)), int64(int32(y))
				}
				if sy == 0 {
					return 0
				}
				var r int64
				if mod {
					r = sx % sy
				} else {
					r = sx / sy
				}
				if bits == 32 {
					r = int64(int32(r))
				}
				return uint64(r)
			}
			ux, uy := x, y
			if bits == 32 {
				ux, uy = uint64(uint32(x)), uint64(uint32(y))
			}
			if uy == 0 {
				return 0
			}
			var r uint64
			if mod {
				r = ux % uy
			} else {
				r = ux / uy
			}
			if bits == 32 {
				r = uint64(int64(int32(r)))
			}
			return r
		}
	}
	helpers := []sem{
		{"__div_i", div(true, 32, false)},
		{"__div_u", div(false, 32, false)},
		{"__div_l", div(true, 64, false)},
		{"__div_ul", div(false, 64, false)},
		{"__mod_i", div(true, 32, true)},
		{"__mod_u", div(false, 32, true)},
		{"__mod_l", div(true, 64, true)},
		{"__mod_ul", div(false, 64, true)},
	}
	for _, h := range helpers {
		f := h.f
		// Ignoring the error is safe: the table is empty at this point.
		_ = m.DefineTrap(h.sym, func(c CPU, _ *mem.Memory) {
			c.SetReg(v0, f(c.Reg(a0), c.Reg(a1)))
		})
	}
}
