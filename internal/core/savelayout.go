package core

// SaveLayout fixes the position of every callee-saved register within the
// worst-case register save area (paper §5.2).  Because the area is sized
// for *all* callee-saved registers up front, each register's slot — and
// every local variable's offset above the area — is known the moment it is
// needed, which is what makes in-place generation possible.  The final
// prologue and epilogue, written at v_end, store and load only the slots
// actually used.
//
// Layout from SP after the frame push:
//
//	[0]                       return address
//	[ptr .. ptr*(1+nGPR))     callee-saved integer registers, conv order
//	[align8 .. +8*nFPR)       callee-saved FP registers, 8-byte slots
type SaveLayout struct {
	conv     *CallConv
	ptrBytes int
	fpBase   int64
	total    int64
}

// NewSaveLayout computes the layout for a convention on a target with the
// given pointer size.
func NewSaveLayout(conv *CallConv, ptrBytes int) SaveLayout {
	gprEnd := int64(ptrBytes) * int64(1+len(conv.CalleeSaved))
	fpBase := (gprEnd + 7) &^ 7
	total := fpBase + 8*int64(len(conv.CalleeSavedFP))
	if total%8 != 0 {
		total = (total + 7) &^ 7
	}
	return SaveLayout{conv: conv, ptrBytes: ptrBytes, fpBase: fpBase, total: total}
}

// RAOff returns the return-address slot offset.
func (l SaveLayout) RAOff() int64 { return 0 }

// GPROff returns the save slot of callee-saved integer register r, or -1
// if r is not callee-saved under the convention.
func (l SaveLayout) GPROff(r Reg) int64 {
	for i, x := range l.conv.CalleeSaved {
		if x == r {
			return int64(l.ptrBytes) * int64(1+i)
		}
	}
	return -1
}

// FPROff returns the save slot of callee-saved FP register r, or -1.
func (l SaveLayout) FPROff(r Reg) int64 {
	for i, x := range l.conv.CalleeSavedFP {
		if x == r {
			return l.fpBase + 8*int64(i)
		}
	}
	return -1
}

// Bytes returns the fixed worst-case save area size.
func (l SaveLayout) Bytes() int64 { return l.total }
