package core

// This file implements VCODE's portable instruction-scheduling interface
// (paper §5.3): clients that are willing to think about delay slots can
// schedule loads and branch delay slots without any per-instruction cost
// on machines that do not have them.

// ScheduleDelay emits a branch together with an instruction for its delay
// slot (v_schedule_delay).  branch must emit exactly one VCODE branch or
// jump; slot should emit one simple VCODE instruction.  If the machine has
// delay slots and the instruction fits (a single word with no relocations),
// it replaces the padding nop in the slot; otherwise it is placed before
// the branch, preserving semantics on machines without slots.
func (a *Asm) ScheduleDelay(branch, slot func()) {
	if !a.ready() {
		return
	}
	// The code motion below invalidates recorded branch sites and event
	// order; recordings of delay-scheduled functions do not replay.
	a.recordUnsupported("delay-slot scheduling")
	start := a.buf.Len()
	branch()
	mid := a.buf.Len()
	slot()
	end := a.buf.Len()
	if a.err != nil {
		return
	}
	slotWords := end - mid
	if a.backend.BranchDelaySlots() == 1 && slotWords == 1 &&
		mid-start >= 2 && a.backend.IsNop(a.buf.At(mid-1)) &&
		!a.sitesIn(mid, end) && !a.boundIn(mid, end) {
		// Drop the slot word into the branch's padding nop.
		a.buf.Set(mid-1, a.buf.At(mid))
		a.buf.Truncate(mid)
		return
	}
	// Place the slot instruction(s) before the branch: rotate
	// [start,mid) after [mid,end) and remap every recorded site in one
	// pass (branch part moves right by slotWords, slot part moves left
	// by the branch length).
	rotate(a.buf.Words()[start:end], mid-start)
	a.remapSites(func(s int) int {
		switch {
		case s >= start && s < mid:
			return s + slotWords
		case s >= mid && s < end:
			return s - (mid - start)
		default:
			return s
		}
	})
}

// RawLoad emits a load followed by enough nops to make its result safely
// available (v_raw_load).  uses is the number of VCODE instructions the
// client will emit before using the result; if that is less than the
// machine's load delay, the difference is padded.
func (a *Asm) RawLoad(load func(), uses int) {
	if !a.ready() {
		return
	}
	a.recordUnsupported("raw-load scheduling")
	load()
	for pad := a.backend.LoadDelay() - uses; pad > 0; pad-- {
		a.backend.Nop(a.buf)
	}
}

// rotate left-rotates w by k positions (triple-reverse).
func rotate(w []uint32, k int) {
	reverse(w[:k])
	reverse(w[k:])
	reverse(w)
}

func reverse(w []uint32) {
	for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
		w[i], w[j] = w[j], w[i]
	}
}

// sitesIn reports whether any fixup/reloc/pool/argload site lies in
// [lo, hi).
func (a *Asm) sitesIn(lo, hi int) bool {
	in := func(s int) bool { return s >= lo && s < hi }
	for _, f := range a.fixups {
		if in(f.site) {
			return true
		}
	}
	for _, r := range a.relocs {
		for _, s := range r.Sites {
			if in(s) {
				return true
			}
		}
	}
	for _, p := range a.poolRefs {
		for _, s := range p.sites {
			if in(s) {
				return true
			}
		}
	}
	for _, p := range a.pending {
		if in(p.site) {
			return true
		}
	}
	return false
}

func (a *Asm) boundIn(lo, hi int) bool {
	for _, t := range a.labels {
		if t >= lo && t < hi {
			return true
		}
	}
	return false
}

// remapSites applies adj to every recorded instruction index.
func (a *Asm) remapSites(adj func(int) int) {
	for i := range a.fixups {
		a.fixups[i].site = adj(a.fixups[i].site)
	}
	for i := range a.relocs {
		for j := range a.relocs[i].Sites {
			a.relocs[i].Sites[j] = adj(a.relocs[i].Sites[j])
		}
	}
	for i := range a.poolRefs {
		for j := range a.poolRefs[i].sites {
			a.poolRefs[i].sites[j] = adj(a.poolRefs[i].sites[j])
		}
	}
	for i := range a.pending {
		a.pending[i].site = adj(a.pending[i].site)
	}
	for i := range a.retSites {
		a.retSites[i].jmpIdx = adj(a.retSites[i].jmpIdx)
		if a.retSites[i].moveIdx >= 0 {
			a.retSites[i].moveIdx = adj(a.retSites[i].moveIdx)
		}
	}
	for i := range a.labels {
		if a.labels[i] >= 0 {
			a.labels[i] = adj(a.labels[i])
		}
	}
}
