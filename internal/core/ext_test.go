package core_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
)

func newMips() (*mips.Backend, *core.Machine) {
	bk := mips.New()
	m := mem.New(1<<22, false)
	return bk, core.NewMachine(bk, mips.NewCPU(m), m)
}

// buildExt1 generates fn(x) { return ext(x) } for a one-source extension.
func buildExt1(bk core.Backend, name string, t core.Type) (*core.Func, error) {
	a := core.NewAsm(bk)
	args, err := a.BeginTypes([]core.Type{t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	a.Ext(name, t, args[0], args[0])
	a.Ret(t, args[0])
	return a.End()
}

// buildExt2 generates fn(x, y) { return ext(x, y) }.
func buildExt2(bk core.Backend, name string, t core.Type) (*core.Func, error) {
	a := core.NewAsm(bk)
	args, err := a.BeginTypes([]core.Type{t, t}, core.Leaf)
	if err != nil {
		return nil, err
	}
	a.Ext(name, t, args[0], args[0], args[1])
	a.Ret(t, args[0])
	return a.End()
}

func TestExtBswap(t *testing.T) {
	bk, m := newMips()
	b2, err := buildExt1(bk, "bswap2", core.TypeU)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := buildExt1(bk, "bswap4", core.TypeU)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x uint32) bool {
		got2, err := m.Call(b2, core.U(x))
		if err != nil {
			return false
		}
		want2 := uint64(x>>8&0xff | x<<8&0xff00)
		got4, err := m.Call(b4, core.U(x))
		if err != nil {
			return false
		}
		want4 := uint64(x>>24 | x>>8&0xff00 | x<<8&0xff0000 | x<<24)
		return got2.Uint() == want2 && got4.Uint() == want4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExtMinMaxAbs(t *testing.T) {
	bk, m := newMips()
	minf, err := buildExt2(bk, "min", core.TypeI)
	if err != nil {
		t.Fatal(err)
	}
	maxf, err := buildExt2(bk, "max", core.TypeI)
	if err != nil {
		t.Fatal(err)
	}
	absf, err := buildExt1(bk, "abs", core.TypeI)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y int32) bool {
		mn, err := m.Call(minf, core.I(x), core.I(y))
		if err != nil {
			return false
		}
		mx, err := m.Call(maxf, core.I(x), core.I(y))
		if err != nil {
			return false
		}
		ab, err := m.Call(absf, core.I(x))
		if err != nil {
			return false
		}
		wantAbs := int64(x)
		if wantAbs < 0 {
			wantAbs = -wantAbs
		}
		if x == math.MinInt32 {
			wantAbs = math.MinInt32 // two's complement abs overflow
		}
		return mn.Int() == int64(min32(x, y)) && mx.Int() == int64(max32(x, y)) && ab.Int() == wantAbs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func TestExtSqrtHardware(t *testing.T) {
	bk, m := newMips()
	fn, err := buildExt1(bk, "sqrt", core.TypeD)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2, 100, 0.25} {
		got, err := m.Call(fn, core.D(x))
		if err != nil {
			t.Fatal(err)
		}
		if got.Float64() != math.Sqrt(x) {
			t.Errorf("sqrt(%v) = %v", x, got.Float64())
		}
	}
}

func TestExtCmov(t *testing.T) {
	bk, m := newMips()
	a := core.NewAsm(bk)
	args, err := a.Begin("%i%i%i", core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	// r = x; if cond != 0 then r = y.
	a.Ext("cmovne", core.TypeI, args[0], args[1], args[2])
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, y, c, want int32 }{
		{1, 2, 0, 1}, {1, 2, 1, 2}, {5, -7, -1, -7},
	} {
		got, err := m.Call(fn, core.I(tc.x), core.I(tc.y), core.I(tc.c))
		if err != nil {
			t.Fatal(err)
		}
		if got.Int() != int64(tc.want) {
			t.Errorf("cmovne(%d,%d,%d) = %d, want %d", tc.x, tc.y, tc.c, got.Int(), tc.want)
		}
	}
}

func TestExtUnknownAndClientDefined(t *testing.T) {
	bk, _ := newMips()
	a := core.NewAsm(bk)
	args, _ := a.Begin("%i", core.Leaf)
	a.Ext("frobnicate", core.TypeI, args[0], args[0])
	if !errors.Is(a.Err(), core.ErrUnknownExt) {
		t.Fatalf("unknown ext: %v", a.Err())
	}

	// A client-registered family (one "spec line") works immediately and
	// can even override a builtin.
	bk2, m := newMips()
	a2 := core.NewAsm(bk2)
	a2.DefineExt(&core.ExtDef{
		Name: "double2", NSrc: 1, Types: []core.Type{core.TypeI},
		Synth: func(a *core.Asm, t core.Type, rd core.Reg, rs []core.Reg) {
			a.Addi(rd, rs[0], rs[0])
		},
	})
	args2, _ := a2.Begin("%i", core.Leaf)
	a2.Ext("double2", core.TypeI, args2[0], args2[0])
	a2.Reti(args2[0])
	fn, err := a2.End()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Call(fn, core.I(21))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Fatalf("double2(21) = %d", got.Int())
	}
}

func TestExtWrongArity(t *testing.T) {
	bk, _ := newMips()
	a := core.NewAsm(bk)
	args, _ := a.Begin("%i", core.Leaf)
	a.Ext("min", core.TypeI, args[0], args[0]) // min wants 2 sources
	if a.Err() == nil {
		t.Fatal("arity mismatch should error")
	}
}
