// Execution-engine selection and the predecoded-body registry behind the
// direct-threaded engine (internal/exec).  At install time each verified
// function is predecoded once into a flat array of unpacked-operand
// instruction structs; the call loop then dispatches through the
// backend's handler table instead of fetching and re-decoding a word per
// step.  The fetch/switch Step loop remains available (EngineSwitch) and
// is the verification oracle: internal/exec/diff requires bit-identical
// architectural state from both engines on every regtest program.
package core

import (
	"fmt"
	"sort"

	"repro/internal/exec"
)

// ThreadedCPU is implemented by simulators that provide a predecoded
// direct-threaded execution engine alongside Step.
type ThreadedCPU interface {
	CPU
	// Predecode unpacks words (already linked, as installed at base) into
	// a threaded body.  It must be a pure function of its arguments —
	// InstallBatch calls it from unlocked worker goroutines while the
	// simulator may be running.
	Predecode(words []uint32, base uint64) *exec.Body
	// RunBody executes up to allow instructions starting at body index
	// idx, returning how many retired.  On return the CPU's PC is
	// architecturally consistent: the next instruction to execute, or the
	// faulting instruction when err is non-nil.
	RunBody(b *exec.Body, idx int, allow uint64) (uint64, error)
	// PendingDelay reports whether a delay-slot branch is in flight
	// (materialized inDelay state); the threaded engine cannot resume
	// mid-delay-pair, so the run loop must fall back to Step until the
	// pair completes.
	PendingDelay() bool
}

// Engine selects how Machine.Call executes installed code.
type Engine int

const (
	// EngineSwitch is the per-instruction fetch/decode/dispatch Step
	// loop — the original engine and the verification oracle.
	EngineSwitch Engine = iota
	// EngineThreaded dispatches through per-function predecoded bodies
	// (the default when the backend's CPU implements ThreadedCPU).
	EngineThreaded
)

func (e Engine) String() string {
	if e == EngineThreaded {
		return "threaded"
	}
	return "switch"
}

// ParseEngine converts a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "switch":
		return EngineSwitch, nil
	case "threaded":
		return EngineThreaded, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want switch or threaded)", s)
}

// SetEngine selects the execution engine for subsequent calls.  Asking
// for the threaded engine on a CPU without one reports an error.
func (m *Machine) SetEngine(e Engine) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e == EngineThreaded && m.tcpu == nil {
		return fmt.Errorf("machine: %s CPU has no threaded engine", m.backend.Name())
	}
	m.engine = e
	return nil
}

// Engine returns the currently selected execution engine.
func (m *Machine) Engine() Engine {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engine
}

// PredecodedBodies reports how many predecoded function bodies are
// currently attached — an introspection hook for eviction and
// stale-predecode tests.
func (m *Machine) PredecodedBodies() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.bodies)
}

// attachBody registers a freshly predecoded body.  Any stale body
// overlapping the same address range is dropped first, so a re-install
// at a reused arena address can never execute the old function's
// predecoded instructions.  A body containing a registered trap address
// is not attached at all: the threaded loop only re-checks for traps at
// dispatch boundaries, and sequential fall-through into a trap word
// would otherwise bypass the handler.  Caller holds mu.
func (m *Machine) attachBody(b *exec.Body) {
	if b == nil || len(b.Code) == 0 {
		return
	}
	for a := range m.traps {
		if a >= b.Base && a < b.End() {
			return
		}
	}
	m.dropBodies(b.Base, b.End()-b.Base)
	i := sort.Search(len(m.bodies), func(i int) bool { return m.bodies[i].Base >= b.Base })
	m.bodies = append(m.bodies, nil)
	copy(m.bodies[i+1:], m.bodies[i:])
	m.bodies[i] = b
}

// dropBodies removes every body intersecting [addr, addr+size) —
// called from Uninstall and Release in the same critical section that
// returns the code region, so the body disappears atomically with the
// bytes it was decoded from.  Caller holds mu.
func (m *Machine) dropBodies(addr, size uint64) {
	n := len(m.bodies)
	if n == 0 {
		return
	}
	end := addr + size
	// The slice is sorted by Base and bodies never overlap each other
	// (attachBody drops intersections first), so the bodies hit by
	// [addr, end) form one contiguous run.  Binary-search its start —
	// a linear filter here made every install O(resident bodies), which
	// the batch pipeline turns into O(n²).
	lo, hi := 0, n // first body with End() > addr
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.bodies[mid].End() <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	first := lo
	last := first
	for last < n && m.bodies[last].Base < end {
		if m.lastBody == m.bodies[last] {
			m.lastBody = nil
		}
		last++
	}
	if first == last {
		return
	}
	copy(m.bodies[first:], m.bodies[last:])
	kept := n - (last - first)
	// Nil the tail so dropped bodies are not pinned by the backing array.
	for i := kept; i < n; i++ {
		m.bodies[i] = nil
	}
	m.bodies = m.bodies[:kept]
}

// bodyAt finds the attached body containing pc (word-aligned), or nil.
// The single-entry lastBody cache makes the common call pattern — many
// dispatches into the same hot function — a pointer compare instead of
// a binary search.  Caller holds mu (the run loop does).
func (m *Machine) bodyAt(pc uint64) *exec.Body {
	if b := m.lastBody; b != nil && b.Contains(pc) {
		return b
	}
	// Manual binary search (largest Base <= pc): sort.Search's
	// per-probe closure call is measurable when the caller rotates
	// across many warm functions and lastBody always misses.
	lo, hi := 0, len(m.bodies)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.bodies[mid].Base > pc {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return nil
	}
	b := m.bodies[lo-1]
	if !b.Contains(pc) {
		return nil
	}
	m.lastBody = b
	return b
}
