package core

import (
	"fmt"

	"repro/internal/trace"
)

// RelocKind classifies a relocation left in a Func for the loader.
type RelocKind uint8

const (
	// RelocCall marks a call whose absolute target is resolved at
	// install time.
	RelocCall RelocKind = iota
	// RelocAddr marks an absolute-address materialization (constant
	// pool references, Setfunc).
	RelocAddr
)

// Reloc is one unresolved reference in a generated function.  v_end links
// everything it can; what remains is resolved when a Machine installs the
// function at its final address.
type Reloc struct {
	Kind RelocKind
	// Sites are the word indices the loader patches.
	Sites []int
	// Target, when non-nil, is the referenced function (possibly the
	// function itself, for constant-pool references).  Otherwise Sym
	// names a machine symbol (runtime helper, client-registered entry).
	Target *Func
	Sym    string
	// Addend is a byte offset added to the target address.
	Addend int64
}

// Func is a dynamically generated function: the finished machine code plus
// the loader metadata v_end could not resolve in place.
type Func struct {
	// Name is a client-chosen label used in diagnostics.
	Name string
	// BackendName records which target the code was generated for.
	BackendName string
	// Words is the emitted machine code, including the reserved
	// prologue region and the trailing constant pool.
	Words []uint32
	// Entry is the word index of the first executed instruction (the
	// prologue is written into the tail of its reserved region, so the
	// entry point is usually a few words past index 0).
	Entry int
	// Relocs are the loader's work list.
	Relocs []Reloc
	// Params and Result describe the signature for Machine.Call.
	Params []Type
	Result Type
	// StackArgBytes is the incoming stack-argument area the function
	// expects beyond its register arguments.
	StackArgBytes int64
	// FrameBytes is the final activation record size.
	FrameBytes int64
	// NumInsns counts the VCODE (source-level) instructions the client
	// specified; Words may be longer (synthesized sequences) and
	// includes padding.
	NumInsns int
	// PoolStart is the word index where the trailing constant pool
	// begins; it equals len(Words) when the function has no pool.  The
	// pre-install verifier decodes only [Entry, PoolStart).
	PoolStart int

	addr      uint64
	installed bool
	// owner is the Machine the function is currently installed on;
	// codeSize is the 16-aligned code-region reservation it holds there.
	owner    *Machine
	codeSize uint64
	// sum fingerprints Words as of the last completed install, so a
	// re-Install of a function whose code was mutated afterwards can be
	// rejected instead of silently running the stale copy.  sumValid is
	// false while an install is in flight (self-referential relocations
	// re-enter Install before the final words exist).
	sum      uint64
	sumValid bool
	// flow is the lifecycle span ID shared by every trace span this
	// function generates (see internal/trace); 0 until tracing assigns
	// one.
	flow uint64
}

// TraceFlow returns the function's lifecycle span ID, or 0 if tracing
// never touched it.
func (f *Func) TraceFlow() uint64 { return f.flow }

// lifecycleFlow returns the lifecycle span ID, assigning one on first
// use.  Callers must serialize (the Machine invokes it under its mutex;
// the Asm owns the Func exclusively until End returns).
func (f *Func) lifecycleFlow() uint64 {
	if f.flow == 0 {
		f.flow = trace.NextFlow()
	}
	return f.flow
}

// Installed reports whether a Machine has placed the function in memory.
func (f *Func) Installed() bool { return f.installed }

// Addr returns the base byte address of word 0 after installation.
func (f *Func) Addr() uint64 { return f.addr }

// EntryAddr returns the callable entry address after installation.
func (f *Func) EntryAddr() uint64 { return f.addr + 4*uint64(f.Entry) }

// SizeBytes returns the total code+pool size in bytes.
func (f *Func) SizeBytes() int { return 4 * len(f.Words) }

func (f *Func) String() string {
	return fmt.Sprintf("func %s[%s]: %d words, entry +%d, %d relocs",
		f.Name, f.BackendName, len(f.Words), f.Entry, len(f.Relocs))
}
