package core

import "fmt"

// Type is a VCODE operand type (paper Table 1).  Types are named for their
// mappings to ANSI C types.  Most non-memory operations do not take the
// sub-word types (C, UC, S, US) as operands; memory operations take all of
// them.
type Type uint8

const (
	// TypeV is void; it appears only in signatures.
	TypeV Type = iota
	// TypeC is signed char (8-bit).
	TypeC
	// TypeUC is unsigned char (8-bit).
	TypeUC
	// TypeS is signed short (16-bit).
	TypeS
	// TypeUS is unsigned short (16-bit).
	TypeUS
	// TypeI is int (32-bit).
	TypeI
	// TypeU is unsigned int (32-bit).
	TypeU
	// TypeL is long (the target's native word: 32-bit on MIPS/SPARC,
	// 64-bit on Alpha).
	TypeL
	// TypeUL is unsigned long.
	TypeUL
	// TypeP is void* (pointer-sized, unsigned).
	TypeP
	// TypeF is float (single precision).
	TypeF
	// TypeD is double (double precision).
	TypeD

	numTypes
)

var typeLetters = [numTypes]string{"v", "c", "uc", "s", "us", "i", "u", "l", "ul", "p", "f", "d"}

var typeCNames = [numTypes]string{
	"void", "signed char", "unsigned char", "signed short", "unsigned short",
	"int", "unsigned", "long", "unsigned long", "void *", "float", "double",
}

// Letter returns the single/double letter VCODE name of the type ("i",
// "ul", ...), as used to build instruction names like v_addii.
func (t Type) Letter() string {
	if t >= numTypes {
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
	return typeLetters[t]
}

// CName returns the ANSI C type the VCODE type maps to.
func (t Type) CName() string {
	if t >= numTypes {
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
	return typeCNames[t]
}

func (t Type) String() string { return t.Letter() }

// IsFloat reports whether t is a floating-point type.
func (t Type) IsFloat() bool { return t == TypeF || t == TypeD }

// IsSigned reports whether t is a signed integer type.
func (t Type) IsSigned() bool {
	switch t {
	case TypeC, TypeS, TypeI, TypeL:
		return true
	}
	return false
}

// IsInteger reports whether t is an integer (or pointer) type.
func (t Type) IsInteger() bool {
	switch t {
	case TypeC, TypeUC, TypeS, TypeUS, TypeI, TypeU, TypeL, TypeUL, TypeP:
		return true
	}
	return false
}

// IsSubWord reports whether t is smaller than a machine word (these types
// are valid only for memory operations and conversions).
func (t Type) IsSubWord() bool {
	switch t {
	case TypeC, TypeUC, TypeS, TypeUS:
		return true
	}
	return false
}

// Size returns the size in bytes of a value of type t on a target whose
// native word (long/pointer) is ptrBytes wide.
func (t Type) Size(ptrBytes int) int {
	switch t {
	case TypeV:
		return 0
	case TypeC, TypeUC:
		return 1
	case TypeS, TypeUS:
		return 2
	case TypeI, TypeU, TypeF:
		return 4
	case TypeL, TypeUL, TypeP:
		return ptrBytes
	case TypeD:
		return 8
	}
	return 0
}

// ParseType parses a single VCODE type letter ("i", "ul", ...).
func ParseType(s string) (Type, error) {
	for t := TypeV; t < numTypes; t++ {
		if typeLetters[t] == s {
			return t, nil
		}
	}
	return TypeV, fmt.Errorf("vcode: unknown type %q", s)
}

// ParseSig parses a v_lambda-style signature string such as "%i%p%d" into
// the list of parameter types.  An empty string or "%v" denotes no
// parameters.
func ParseSig(sig string) ([]Type, error) {
	var out []Type
	for i := 0; i < len(sig); {
		if sig[i] != '%' {
			return nil, fmt.Errorf("vcode: bad signature %q: expected %%", sig)
		}
		i++
		j := i
		for j < len(sig) && sig[j] != '%' {
			j++
		}
		t, err := ParseType(sig[i:j])
		if err != nil {
			return nil, fmt.Errorf("vcode: bad signature %q: %v", sig, err)
		}
		if t != TypeV {
			out = append(out, t)
		}
		i = j
	}
	return out, nil
}
