package batch_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

func newPool(t *testing.T, workers int) (*jit.Machine, *batch.Pool) {
	t.Helper()
	jm, err := jit.NewMachineTarget("mips", mem.Uncosted)
	if err != nil {
		t.Fatal(err)
	}
	p, err := batch.New(batch.Config{Machine: jm.Core(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return jm, p
}

// synReq compiles jit.Synthetic(k) through the worker's assembler.
func synReq(k int32) batch.Request {
	return batch.Request{
		Name:    fmt.Sprintf("syn%d", k),
		Compile: func(a *core.Asm) (*core.Func, error) { return jit.CompileInto(a, jit.Synthetic(k)) },
	}
}

func TestCompileBatchBasic(t *testing.T) {
	jm, p := newPool(t, 4)
	const n = 64
	reqs := make([]batch.Request, n)
	for i := range reqs {
		reqs[i] = synReq(int32(i))
	}
	res := p.CompileBatch(context.Background(), reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		got, _, err := jm.Run(r.Func, 10)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// Synthetic(k)(n) = sum(i*k for i in 1..n) + n*(n+1)/2... the
		// repo-wide check: Synthetic(k)(10) == 385 + 10*k.
		if want := int32(385 + 10*i); got != want {
			t.Fatalf("syn%d(10) = %d, want %d", i, got, want)
		}
	}
}

func TestPoisonedItemFailsAlone(t *testing.T) {
	jm, p := newPool(t, 3)
	boom := errors.New("boom")
	reqs := []batch.Request{
		synReq(1),
		{Name: "panics", Compile: func(a *core.Asm) (*core.Func, error) { panic("kaboom") }},
		{Name: "errors", Compile: func(a *core.Asm) (*core.Func, error) { return nil, boom }},
		synReq(2),
	}
	res := p.CompileBatch(context.Background(), reqs)
	var pe *batch.PanicError
	if !errors.As(res[1].Err, &pe) || pe.Name != "panics" {
		t.Fatalf("res[1].Err = %v, want *batch.PanicError", res[1].Err)
	}
	if !errors.Is(res[2].Err, boom) {
		t.Fatalf("res[2].Err = %v, want %v", res[2].Err, boom)
	}
	for _, i := range []int{0, 3} {
		if res[i].Err != nil {
			t.Fatalf("sibling %d failed: %v", i, res[i].Err)
		}
		if got, _, err := jm.Run(res[i].Func, 10); err != nil || got != int32(385+10*(i/3+1)) {
			t.Fatalf("sibling %d run = %d, %v", i, got, err)
		}
	}
}

// TestCancelMidBatch cancels the context from inside one item's compile
// callback: later compiles are skipped, the batched install aborts, and
// the machine arena is exactly as before — nothing half-installed.
func TestCancelMidBatch(t *testing.T) {
	jm, p := newPool(t, 2)
	m := jm.Core()
	resident := m.CodeBytesResident()
	spans := len(m.FuncSpans())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 16
	reqs := make([]batch.Request, n)
	for i := range reqs {
		k := int32(i)
		reqs[i] = batch.Request{
			Name: fmt.Sprintf("syn%d", k),
			Compile: func(a *core.Asm) (*core.Func, error) {
				if k == 4 {
					cancel()
				}
				return jit.CompileInto(a, jit.Synthetic(k))
			},
		}
	}
	res := p.CompileBatch(ctx, reqs)
	for i, r := range res {
		if r.Err == nil {
			t.Fatalf("item %d: nil error after mid-batch cancel", i)
		}
		if r.Func != nil && m.Installed(r.Func) {
			t.Fatalf("item %d installed despite cancel", i)
		}
	}
	if got := m.CodeBytesResident(); got != resident {
		t.Fatalf("resident code %d after canceled batch, want %d", got, resident)
	}
	if got := len(m.FuncSpans()); got != spans {
		t.Fatalf("span count %d after canceled batch, want %d", got, spans)
	}
	// The pool stays usable with a fresh context.
	res = p.CompileBatch(context.Background(), []batch.Request{synReq(3)})
	if res[0].Err != nil {
		t.Fatalf("batch after cancel: %v", res[0].Err)
	}
	if got, _, err := jm.Run(res[0].Func, 10); err != nil || got != 415 {
		t.Fatalf("run after cancel = %d, %v", got, err)
	}
}

func TestSubmitAsyncAndCloseWaits(t *testing.T) {
	_, p := newPool(t, 2)
	var done atomic.Int32
	for b := 0; b < 3; b++ {
		reqs := []batch.Request{synReq(int32(b)), synReq(int32(b + 100))}
		err := p.Submit(context.Background(), reqs, func(res []batch.Result) {
			for _, r := range res {
				if r.Err != nil {
					t.Errorf("submit item: %v", r.Err)
				}
			}
			done.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	p.Close() // must wait for all accepted submits and their callbacks
	if got := done.Load(); got != 3 {
		t.Fatalf("%d callbacks ran by Close return, want 3", got)
	}
	if err := p.Submit(context.Background(), []batch.Request{synReq(9)}, nil); !errors.Is(err, batch.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	res := p.CompileBatch(context.Background(), []batch.Request{synReq(9)})
	if !errors.Is(res[0].Err, batch.ErrClosed) {
		t.Fatalf("CompileBatch after Close = %v, want ErrClosed", res[0].Err)
	}
}

func TestPoolTelemetry(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	_, p := newPool(t, 2)
	reg := telemetry.NewRegistry()
	p.RegisterTelemetry(reg, "t")
	res := p.CompileBatch(context.Background(), []batch.Request{synReq(1), synReq(2), synReq(3)})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	snap := reg.Snapshot()
	if got := snap["batch.t.batches"]; got != uint64(1) {
		t.Fatalf("batches = %v, want 1", got)
	}
	if got := snap["batch.t.items"]; got != uint64(3) {
		t.Fatalf("items = %v, want 3", got)
	}
	if _, ok := snap["batch.t.queue_depth"]; !ok {
		t.Fatal("queue_depth gauge missing")
	}
	if _, ok := snap["batch.t.compile_ns"]; !ok {
		t.Fatal("compile_ns histogram missing")
	}
}

// TestConcurrentBatches interleaves many batches across goroutines under
// the race detector's eye.
func TestConcurrentBatches(t *testing.T) {
	jm, p := newPool(t, 4)
	const G, per = 6, 10
	errc := make(chan error, G)
	for g := 0; g < G; g++ {
		go func(g int) {
			reqs := make([]batch.Request, per)
			for i := range reqs {
				reqs[i] = synReq(int32(g*per + i))
			}
			for _, r := range p.CompileBatch(context.Background(), reqs) {
				if r.Err != nil {
					errc <- r.Err
					return
				}
				if _, _, err := jm.Run(r.Func, 5); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	deadline := time.After(30 * time.Second)
	for g := 0; g < G; g++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent batches timed out")
		}
	}
}
