// Package batch is the parallel batch compilation pipeline: a worker
// pool that fans a set of compile requests across GOMAXPROCS-bounded
// goroutines, each emitting into its own reused core.Asm buffer (no
// shared emit lock), then installs the finished bodies into the
// core.Machine arena through one batched, verification-included
// InstallBatch — a single lock acquisition and one contiguous arena
// reservation per batch instead of per function.
//
// The paper's headline is per-instruction generation cost (§1, §6);
// this package is about the per-function overheads that dominate once
// many small functions are generated at once (service warmup, adaptive
// promotion sweeps): assembler construction, the install lock, and the
// copy-on-write address-map publication are all amortized across the
// batch, and the pure link/verify/encode middle runs in parallel.
//
// Error discipline: every item gets its own error slot — one poisoned
// request fails alone while its siblings install.  A panicking compile
// callback is recovered into a *PanicError (callers layering their own
// panic taxonomy, like codecache's CompilePanicError, recover inside
// their Compile closures before the pool sees the panic).  Context
// cancellation is honored at every stage boundary: unstarted compiles
// are skipped, and the batched install either commits entirely before
// the cancel or not at all — no leaked goroutines, no half-installed
// bodies.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrClosed is returned for work given to a pool after Close.
var ErrClosed = errors.New("batch: pool is closed")

// PanicError reports that a compile callback panicked; the pool recovers
// the panic so one poisoned request cannot take down the worker or the
// batch.
type PanicError struct {
	Name  string // Request.Name of the poisoned item
	Value any    // recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batch: compile for %q panicked: %v", e.Name, e.Value)
}

// Request is one unit of work: Compile emits a function into the
// worker-owned assembler it is handed (Begin…End, or any front end that
// drives the Asm) and returns the finished Func.  The assembler is
// reused across requests on the same worker, so Compile must not retain
// it past the call.
type Request struct {
	// Name labels the item in errors and spans (the compiled Func
	// carries its own name for the machine's address map).
	Name string
	// Compile builds the function on the worker's assembler.
	Compile func(a *core.Asm) (*core.Func, error)
}

// Result is one item's outcome: Func on success, Err on a compile,
// verify or install failure.  Exactly one of the two is non-nil.
type Result struct {
	Func *core.Func
	Err  error
}

// Config sizes a Pool.
type Config struct {
	// Machine receives the batched installs and supplies the backend the
	// worker assemblers emit for.  Required.
	Machine *core.Machine
	// Workers is the number of compile goroutines (<= 0 means
	// GOMAXPROCS).  The same bound caps the parallel phase of the
	// batched install.
	Workers int
	// Name, when non-empty, registers the pool's instruments in the
	// process-wide telemetry registry under "batch.<Name>.*": a queue
	// depth gauge, a batch-size histogram, the per-worker compile
	// timing histogram, and item/error counters.
	Name string
}

// Pool is the worker-pool compilation pipeline.  It is safe for
// concurrent use; batches from multiple callers interleave on the same
// workers.
type Pool struct {
	m       *core.Machine
	workers int

	queue    chan *task
	workerWg sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // open batches (sync and Submit)

	queueDepth atomic.Int64

	// Telemetry instruments; nil when Config.Name was empty.
	batchSize *telemetry.Histogram
	compileNS *telemetry.Histogram
	batches   *telemetry.Counter
	items     *telemetry.Counter
	itemErrs  *telemetry.Counter
	panics    *telemetry.Counter
}

type task struct {
	ctx context.Context
	req *Request
	res *Result
	wg  *sync.WaitGroup
}

// batchSizeBounds buckets batch sizes (items, not nanoseconds).
var batchSizeBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// New builds a pool and starts its workers.  Close releases them.
func New(cfg Config) (*Pool, error) {
	if cfg.Machine == nil {
		return nil, errors.New("batch: Config.Machine is required")
	}
	n := cfg.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		m:       cfg.Machine,
		workers: n,
		queue:   make(chan *task),
	}
	if cfg.Name != "" {
		p.RegisterTelemetry(telemetry.Default, cfg.Name)
	}
	for i := 0; i < n; i++ {
		p.workerWg.Add(1)
		go p.worker()
	}
	return p, nil
}

// RegisterTelemetry registers the pool's instruments in reg under
// "batch.<name>.*".  New does this automatically when Config.Name is
// set; use this for a registry other than the default.
func (p *Pool) RegisterTelemetry(reg *telemetry.Registry, name string) {
	prefix := "batch." + name + "."
	p.batchSize = reg.Histogram(prefix+"batch_size", batchSizeBounds)
	p.compileNS = reg.Histogram(prefix+"compile_ns", nil)
	p.batches = reg.Counter(prefix + "batches")
	p.items = reg.Counter(prefix + "items")
	p.itemErrs = reg.Counter(prefix + "item_errors")
	p.panics = reg.Counter(prefix + "compile_panics")
	reg.GaugeFunc(prefix+"queue_depth", func() float64 {
		return float64(p.queueDepth.Load())
	})
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth reports how many accepted compile items have not yet been
// picked up by a worker.
func (p *Pool) QueueDepth() int64 { return p.queueDepth.Load() }

// Machine returns the install target.
func (p *Pool) Machine() *core.Machine { return p.m }

// acquire registers an open batch, failing once the pool is closed.
func (p *Pool) acquire() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.inflight.Add(1)
	return nil
}

// CompileBatch compiles every request on the pool's workers, installs
// the successful bodies into the machine in one batched critical
// section, and returns one Result per request, index-aligned.  It
// blocks until the batch settles; concurrent batches share the workers.
func (p *Pool) CompileBatch(ctx context.Context, reqs []Request) []Result {
	res := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return res
	}
	if err := p.acquire(); err != nil {
		for i := range res {
			res[i].Err = err
		}
		return res
	}
	defer p.inflight.Done()
	p.run(ctx, reqs, res)
	return res
}

// Submit is the asynchronous CompileBatch: the batch runs in the
// background and done (if non-nil) receives the results when it
// settles.  Close waits for every accepted Submit, so callbacks always
// run; an ErrClosed rejection is the only case where done is never
// called.
func (p *Pool) Submit(ctx context.Context, reqs []Request, done func([]Result)) error {
	if err := p.acquire(); err != nil {
		return err
	}
	go func() {
		defer p.inflight.Done()
		res := make([]Result, len(reqs))
		p.run(ctx, reqs, res)
		if done != nil {
			done(res)
		}
	}()
	return nil
}

// run executes one batch: compile fan-out, then the batched install.
// The caller holds an inflight registration.
func (p *Pool) run(ctx context.Context, reqs []Request, res []Result) {
	if ctx == nil {
		ctx = context.Background()
	}
	span := trace.Begin(trace.KindBatch, p.m.Backend().Name(), fmt.Sprintf("batch[%d]", len(reqs)))

	// Fan the compiles out to the workers.  On cancellation mid-enqueue
	// the not-yet-accepted remainder is failed immediately; items a
	// worker already holds finish or observe the cancel themselves.
	var wg sync.WaitGroup
	canceled := false
	for i := range reqs {
		if canceled {
			res[i].Err = ctx.Err()
			continue
		}
		t := &task{ctx: ctx, req: &reqs[i], res: &res[i], wg: &wg}
		wg.Add(1)
		p.queueDepth.Add(1)
		select {
		case p.queue <- t:
		case <-ctx.Done():
			p.queueDepth.Add(-1)
			wg.Done()
			res[i].Err = ctx.Err()
			canceled = true
		}
	}
	wg.Wait()

	// Batched install of every compiled body.  InstallBatch honors ctx
	// itself: on cancel the whole reservation is released and each item
	// reports the context error.
	fns := make([]*core.Func, 0, len(res))
	idxs := make([]int, 0, len(res))
	for i := range res {
		if res[i].Err != nil {
			continue
		}
		if res[i].Func == nil {
			res[i].Err = fmt.Errorf("batch: compile for %q returned no function", reqs[i].Name)
			continue
		}
		fns = append(fns, res[i].Func)
		idxs = append(idxs, i)
	}
	var installedBytes int64
	if len(fns) > 0 {
		ierrs := p.m.InstallBatch(ctx, p.workers, fns)
		for k, err := range ierrs {
			if err != nil {
				res[idxs[k]].Func, res[idxs[k]].Err = nil, err
			} else {
				installedBytes += int64(fns[k].SizeBytes())
			}
		}
	}

	nerr := 0
	for i := range res {
		if res[i].Err != nil {
			nerr++
		}
	}
	if telemetry.Enabled() && p.batchSize != nil {
		p.batchSize.Observe(uint64(len(reqs)))
		p.batches.Inc()
		p.items.Add(uint64(len(reqs)))
		p.itemErrs.Add(uint64(nerr))
	}
	verdict := "ok"
	if nerr > 0 {
		verdict = fmt.Sprintf("%d failed", nerr)
	}
	span.End(trace.NextFlow(), trace.Attrs{N: int64(len(reqs)), Bytes: installedBytes, Verdict: verdict})
}

// worker is one compile goroutine.  It owns one assembler, reused
// across items so buffer and bookkeeping allocations amortize; the
// assembler is discarded whenever a compile fails or panics, because a
// callback that errored out mid-build leaves the Asm in an unknown
// state.
func (p *Pool) worker() {
	defer p.workerWg.Done()
	var asm *core.Asm
	for t := range p.queue {
		p.queueDepth.Add(-1)
		if err := t.ctx.Err(); err != nil {
			t.res.Err = err
			t.wg.Done()
			continue
		}
		if asm == nil {
			asm = core.NewAsm(p.m.Backend())
		}
		var t0 time.Time
		if telemetry.Enabled() && p.compileNS != nil {
			t0 = time.Now()
		}
		t.res.Func, t.res.Err = p.compileOne(asm, t.req)
		if !t0.IsZero() {
			p.compileNS.Observe(uint64(time.Since(t0)))
		}
		if t.res.Err != nil {
			asm = nil
		}
		t.wg.Done()
	}
}

// compileOne runs one request's callback with panic isolation.
func (p *Pool) compileOne(asm *core.Asm, req *Request) (fn *core.Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			fn = nil
			err = &PanicError{Name: req.Name, Value: r}
			if telemetry.Enabled() && p.panics != nil {
				p.panics.Inc()
			}
		}
	}()
	return req.Compile(asm)
}

// Close stops the pool: new batches are rejected with ErrClosed, open
// batches (including accepted Submits and their callbacks) are waited
// for, and the workers exit.  Close is idempotent and safe to call
// concurrently with batch submission.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.inflight.Wait()
	close(p.queue)
	p.workerWg.Wait()
}
