package superblock_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/regtest"
	"repro/internal/superblock"
)

// The differential oracle: every function is built twice — tier 2 (plain
// emission, recorded) and tier 3 (superblock-formed from the recording and
// a trained edge profile) — on machine pairs with identical allocation
// histories.  For every input the two tiers must produce the same return
// value, the same trap behavior, the same data memory, and the same
// contents in every architectural register except the backend's reserved
// scratch registers.  Tier 2 is the reference semantics; no Go-level
// model is consulted.
type oracle struct {
	t      *testing.T
	tgt    regtest.Target
	m2, m3 *core.Machine
	edges  *profile.EdgeProfiler

	dataAddr uint64
	dataLen  int
}

func newOracle(t *testing.T, tgt regtest.Target) *oracle {
	t.Helper()
	o := &oracle{t: t, tgt: tgt, m2: tgt.NewMachine(), m3: tgt.NewMachine(), dataLen: 256}
	a2, err := o.m2.Alloc(o.dataLen)
	if err != nil {
		t.Fatalf("alloc tier-2 data: %v", err)
	}
	a3, err := o.m3.Alloc(o.dataLen)
	if err != nil {
		t.Fatalf("alloc tier-3 data: %v", err)
	}
	if a2 != a3 {
		t.Fatalf("data regions diverge: %#x vs %#x", a2, a3)
	}
	o.dataAddr = a2
	// Stride 1: training counts every branch resolution, so formation
	// sees exact bias.
	o.edges = profile.NewEdgeProfiler(1)
	if err := o.edges.Attach(o.m2); err != nil {
		t.Fatalf("attach edge profiler: %v", err)
	}
	return o
}

// seedBoth writes the same deterministic pattern into both machines' data
// buffers.
func (o *oracle) seedBoth() {
	buf := make([]byte, o.dataLen)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	if err := o.m2.Mem().WriteBytes(o.dataAddr, buf); err != nil {
		o.t.Fatalf("seed tier-2: %v", err)
	}
	if err := o.m3.Mem().WriteBytes(o.dataAddr, buf); err != nil {
		o.t.Fatalf("seed tier-3: %v", err)
	}
}

// syncRegs copies tier-2's architectural register state onto tier-3, so a
// comparison after the next call pair sees only divergence that call pair
// created (residue from earlier cases and training calls differs
// legitimately).
func (o *oracle) syncRegs() {
	rf := o.tgt.Backend.RegFile()
	c2, c3 := o.m2.CPU(), o.m3.CPU()
	for i := 0; i < rf.NumGPR; i++ {
		r := core.GPR(i)
		c3.SetReg(r, c2.Reg(r))
	}
	for i := 0; i < rf.NumFPR; i++ {
		r := core.FPR(i)
		c3.SetFReg(r, c2.FReg(r, false), false)
	}
}

func (o *oracle) compareRegs(name string, caseIdx int) {
	o.t.Helper()
	rf := o.tgt.Backend.RegFile()
	sc, scf := o.tgt.Backend.ScratchReg(), o.tgt.Backend.ScratchFPR()
	c2, c3 := o.m2.CPU(), o.m3.CPU()
	for i := 0; i < rf.NumGPR; i++ {
		r := core.GPR(i)
		if r == sc {
			continue // scratch: holds per-build immediates, excluded
		}
		if v2, v3 := c2.Reg(r), c3.Reg(r); v2 != v3 {
			o.t.Fatalf("%s[%d]: register %s: tier-2 %#x, tier-3 %#x",
				name, caseIdx, rf.Name(r), v2, v3)
		}
	}
	for i := 0; i < rf.NumFPR; i++ {
		r := core.FPR(i)
		if r == scf {
			continue
		}
		if v2, v3 := c2.FReg(r, false), c3.FReg(r, false); v2 != v3 {
			o.t.Fatalf("%s[%d]: fp register %s: tier-2 %#x, tier-3 %#x",
				name, caseIdx, rf.Name(r), v2, v3)
		}
	}
}

func (o *oracle) compareData(name string, caseIdx int) {
	o.t.Helper()
	b2, err := o.m2.Mem().ReadBytes(o.dataAddr, o.dataLen)
	if err != nil {
		o.t.Fatalf("%s[%d]: read tier-2 data: %v", name, caseIdx, err)
	}
	b3, err := o.m3.Mem().ReadBytes(o.dataAddr, o.dataLen)
	if err != nil {
		o.t.Fatalf("%s[%d]: read tier-3 data: %v", name, caseIdx, err)
	}
	if !bytes.Equal(b2, b3) {
		for i := range b2 {
			if b2[i] != b3[i] {
				o.t.Fatalf("%s[%d]: data byte %#x: tier-2 %#x, tier-3 %#x",
					name, caseIdx, o.dataAddr+uint64(i), b2[i], b3[i])
			}
		}
	}
}

// check runs one function through the full gauntlet.  train inputs run on
// tier 2 only, feeding the edge profile; compare inputs run on both tiers
// with aligned pre-state.  It returns the formed plan so callers can
// assert on its shape.
func (o *oracle) check(name string, build func(a *core.Asm) (*core.Func, error),
	train, compare [][]core.Value) (*superblock.Plan, superblock.CompileStats) {
	o.t.Helper()
	a := core.NewAsm(o.tgt.Backend)
	a.Record(true)
	fn2, err := build(a)
	if err != nil {
		o.t.Fatalf("%s: tier-2 build: %v", name, err)
	}
	rec := a.TakeRecording()
	if rec == nil {
		o.t.Fatalf("%s: no recording", name)
	}
	if ok, why := rec.Eligible(); !ok {
		o.t.Fatalf("%s: recording ineligible: %s", name, why)
	}
	if err := o.m2.Install(fn2); err != nil {
		o.t.Fatalf("%s: install tier-2: %v", name, err)
	}
	for _, in := range train {
		o.seedBoth()
		o.m2.Call(fn2, in...) // traps during training are fine
	}

	bias := func(site int) (uint64, uint64, bool) {
		return o.edges.EdgeAt(fn2.Addr() + 4*uint64(site))
	}
	// CounterAddr left zero: oracle mode, no side-exit counters, so the
	// two tiers touch the same registers and the same memory.
	plan, err := superblock.Form(rec, bias, superblock.Options{})
	if err != nil {
		o.t.Fatalf("%s: form: %v", name, err)
	}
	b := core.NewAsm(o.tgt.Backend)
	fn3, stats, err := plan.Compile(b)
	if err != nil {
		o.t.Fatalf("%s: compile: %v", name, err)
	}
	if err := o.m3.Install(fn3); err != nil {
		o.t.Fatalf("%s: install tier-3: %v", name, err)
	}

	for i, in := range compare {
		o.seedBoth()
		o.syncRegs()
		v2, err2 := o.m2.Call(fn2, in...)
		v3, err3 := o.m3.Call(fn3, in...)
		if (err2 == nil) != (err3 == nil) {
			o.t.Fatalf("%s[%d]: trap divergence: tier-2 %v, tier-3 %v", name, i, err2, err3)
		}
		if err2 != nil {
			continue // both trapped: mid-function state is not comparable
		}
		if v2.Bits != v3.Bits {
			o.t.Fatalf("%s[%d]: result: tier-2 %#x, tier-3 %#x", name, i, v2.Bits, v3.Bits)
		}
		o.compareRegs(name, i)
		o.compareData(name, i)
	}
	return plan, stats
}

// TestOracleRegtestMatrix sweeps the regression-test matrix — every
// binary op, branch, unary op, memory access type, and conversion on all
// three backends — through the tier-2 vs tier-3 oracle.
func TestOracleRegtestMatrix(t *testing.T) {
	branchTypes := []core.Type{core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP, core.TypeF, core.TypeD}
	memTypes := []core.Type{core.TypeC, core.TypeUC, core.TypeS, core.TypeUS,
		core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP, core.TypeF, core.TypeD}

	for _, tgt := range regtest.Targets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			o := newOracle(t, tgt)
			rng := rand.New(rand.NewSource(7))
			ptr := tgt.Backend.PtrBytes()

			pairInputs := func(ty core.Type, n int) [][]core.Value {
				xs, ys := regtest.Samples(ty, n, rng), regtest.Samples(ty, n, rng)
				var out [][]core.Value
				for i := 0; i < n; i++ {
					out = append(out, []core.Value{
						regtest.MakeValue(ty, xs[i], ptr),
						regtest.MakeValue(ty, ys[i], ptr),
					})
				}
				return out
			}

			for _, op := range regtest.BinaryOps() {
				for _, ty := range regtest.ALUTypes(op) {
					op, ty := op, ty
					in := pairInputs(ty, 4)
					o.check(regtest.CaseName(tgt.Name, op, ty),
						func(a *core.Asm) (*core.Func, error) { return regtest.BuildALUOn(a, op, ty) },
						nil, in)
				}
			}
			for _, op := range regtest.BranchOps() {
				for _, ty := range branchTypes {
					op, ty := op, ty
					in := pairInputs(ty, 4)
					// Branch cases train on their own inputs so formation
					// sees whatever bias the samples produce.
					o.check(regtest.CaseName(tgt.Name, op, ty)+"-br",
						func(a *core.Asm) (*core.Func, error) { return regtest.BuildBranchOn(a, op, ty) },
						in, in)
				}
			}
			for _, ty := range memTypes {
				ty := ty
				at := regtest.ArgTypeFor(ty)
				var in [][]core.Value
				for _, bits := range regtest.Samples(at, 4, rng) {
					in = append(in, []core.Value{
						regtest.MakeValue(core.TypeP, o.dataAddr, ptr),
						regtest.MakeValue(at, bits, ptr),
					})
				}
				o.check("mem"+ty.Letter(),
					func(a *core.Asm) (*core.Func, error) { return regtest.BuildMemRoundtripOn(a, ty) },
					nil, in)
			}
			for _, from := range branchTypes {
				for _, to := range branchTypes {
					from, to := from, to
					var in [][]core.Value
					for _, bits := range regtest.Samples(from, 4, rng) {
						in = append(in, []core.Value{regtest.MakeValue(from, bits, ptr)})
					}
					// Illegal conversion pairs fail at build; skip those.
					probe := core.NewAsm(tgt.Backend)
					if _, err := regtest.BuildCvtOn(probe, from, to); err != nil {
						continue
					}
					o.check("cv"+from.Letter()+"2"+to.Letter(),
						func(a *core.Asm) (*core.Func, error) { return regtest.BuildCvtOn(a, from, to) },
						nil, in)
				}
			}

			sig := []core.Type{core.TypeI, core.TypeD, core.TypeP, core.TypeF, core.TypeL}
			var in [][]core.Value
			for i := 0; i < 3; i++ {
				var row []core.Value
				for _, ty := range sig {
					row = append(row, regtest.MakeValue(ty, regtest.Samples(ty, 1+i, rng)[i], ptr))
				}
				in = append(in, row)
			}
			o.check("weightedsum",
				func(a *core.Asm) (*core.Func, error) { return regtest.BuildWeightedSumOn(a, sig) },
				nil, in)
		})
	}
}

// buildLoopSum emits the canonical hot loop the superblock tier targets:
// a counted loop whose body multiplies by constants, reloads the same
// address, and spills through a stack slot.  ty is the accumulator type —
// the target's native word, so memory forwarding is full-width and legal.
func buildLoopSum(ty core.Type) func(a *core.Asm) (*core.Func, error) {
	return func(a *core.Asm) (*core.Func, error) {
		a.SetName("loopsum")
		args, err := a.BeginTypes([]core.Type{core.TypeI, core.TypeP}, core.Leaf)
		if err != nil {
			return nil, err
		}
		n, p := args[0], args[1]
		var sum, i, t1, t2, t3 core.Reg
		for _, r := range []*core.Reg{&sum, &i} {
			if *r, err = a.GetReg(core.Var); err != nil {
				return nil, err
			}
		}
		for _, r := range []*core.Reg{&t1, &t2, &t3} {
			if *r, err = a.GetReg(core.Temp); err != nil {
				return nil, err
			}
		}
		slot := a.Local(ty)
		a.SetI(ty, sum, 0)
		a.SetI(core.TypeI, i, 0)
		loop, done := a.NewLabel(), a.NewLabel()
		a.Bind(loop)
		a.Br(core.OpBge, core.TypeI, i, n, done)
		a.LdI(ty, t1, p, 0)               // load
		a.ALUI(core.OpMul, ty, t2, t1, 8) // strength-reducible multiply
		a.ALU(core.OpAdd, ty, sum, sum, t2)
		a.LdI(ty, t3, p, 0) // duplicate load: forwardable from t1
		a.ALU(core.OpAdd, ty, sum, sum, t3)
		a.StLocal(ty, sum, slot)
		a.LdLocal(ty, t3, slot) // spill round trip: forwardable from sum
		a.ALU(core.OpAdd, ty, sum, sum, t3)
		a.ALUI(core.OpAdd, core.TypeI, i, i, 1)
		a.Jmp(loop)
		a.Bind(done)
		a.Ret(ty, sum)
		return a.End()
	}
}

// buildClamp emits fn(x) { if x < 0 return 0; if x > 100 return 100;
// return x } — two cold branches a trained profile turns into side exits,
// and a straightened unconditional jump.
func buildClamp(a *core.Asm) (*core.Func, error) {
	a.SetName("clamp")
	args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
	if err != nil {
		return nil, err
	}
	x := args[0]
	r, err := a.GetReg(core.Temp)
	if err != nil {
		return nil, err
	}
	neg, big, out := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.BrI(core.OpBlt, core.TypeI, x, 0, neg)
	a.BrI(core.OpBgt, core.TypeI, x, 100, big)
	a.Unary(core.OpMov, core.TypeI, r, x)
	a.Jmp(out)
	a.Bind(neg)
	a.SetI(core.TypeI, r, 0)
	a.Jmp(out)
	a.Bind(big)
	a.SetI(core.TypeI, r, 100)
	a.Bind(out)
	a.Ret(core.TypeI, r)
	return a.End()
}

// TestOracleHotLoops drives the loop-shaped workloads through the oracle
// on all three backends, asserts formation actually restructured them,
// and requires the optimized body to cost fewer cycles.
func TestOracleHotLoops(t *testing.T) {
	for _, tgt := range regtest.Targets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			o := newOracle(t, tgt)
			ptr := tgt.Backend.PtrBytes()
			pv := regtest.MakeValue(core.TypeP, o.dataAddr, ptr)
			word := core.TypeI
			if ptr == 8 {
				word = core.TypeL
			}
			loopSum := buildLoopSum(word)

			var train [][]core.Value
			for i := 0; i < 6; i++ {
				train = append(train, []core.Value{core.I(100), pv})
			}
			compare := [][]core.Value{
				{core.I(0), pv}, {core.I(1), pv}, {core.I(7), pv}, {core.I(100), pv},
			}
			plan, stats := o.check("loopsum", loopSum, train, compare)
			if !plan.Interesting() {
				t.Fatalf("loopsum plan not interesting: %+v", plan)
			}
			if plan.SideExits < 1 || plan.Loops < 1 {
				t.Fatalf("loopsum shape: side exits %d, loops %d", plan.SideExits, plan.Loops)
			}
			if stats.LoadsForwarded < 2 {
				t.Fatalf("loopsum: expected >=2 forwarded loads, got %+v", stats)
			}

			// The optimized body must actually be cheaper on the hot path.
			cycles := func(m *core.Machine, fn *core.Func) uint64 {
				_, st, err := m.CallWithStats(context.Background(), core.CallOpts{}, fn, core.I(200), pv)
				if err != nil {
					t.Fatalf("cycles run: %v", err)
				}
				return st.Cycles
			}
			a2 := core.NewAsm(tgt.Backend)
			a2.Record(true)
			fn2, err := loopSum(a2)
			if err != nil {
				t.Fatal(err)
			}
			rec := a2.TakeRecording()
			m2, m3 := tgt.NewMachine(), tgt.NewMachine()
			if err := m2.Install(fn2); err != nil {
				t.Fatal(err)
			}
			ep := profile.NewEdgeProfiler(1)
			if err := ep.Attach(m2); err != nil {
				t.Fatal(err)
			}
			if _, err := m2.Call(fn2, core.I(200), pv); err != nil {
				t.Fatal(err)
			}
			plan2, err := superblock.Form(rec, func(site int) (uint64, uint64, bool) {
				return ep.EdgeAt(fn2.Addr() + 4*uint64(site))
			}, superblock.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fn3, _, err := plan2.Compile(core.NewAsm(tgt.Backend))
			if err != nil {
				t.Fatal(err)
			}
			if err := m3.Install(fn3); err != nil {
				t.Fatal(err)
			}
			ep.Detach(m2) // measure tier-2 cycles without probe overhead
			c2, c3 := cycles(m2, fn2), cycles(m3, fn3)
			if c3 >= c2 {
				t.Fatalf("superblock not faster: tier-2 %d cycles, tier-3 %d", c2, c3)
			}

			var ctrain [][]core.Value
			for i := 0; i < 8; i++ {
				ctrain = append(ctrain, []core.Value{core.I(int32(i * 11))})
			}
			ccompare := [][]core.Value{
				{core.I(-5)}, {core.I(0)}, {core.I(50)}, {core.I(100)}, {core.I(101)}, {core.I(500)},
			}
			cplan, _ := o.check("clamp", buildClamp, ctrain, ccompare)
			if cplan.SideExits < 2 || cplan.Straightened < 1 {
				t.Fatalf("clamp shape: side exits %d, straightened %d", cplan.SideExits, cplan.Straightened)
			}
		})
	}
}
