package superblock

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/peep"
	"repro/internal/reduce"
)

// CompileStats reports what the rewriter changed.  Every number is a
// value-preserving rewrite: no recorded destination register lost its
// value, only the instructions computing it changed.
type CompileStats struct {
	Folded         int  // ALU results replaced by constant loads
	Reduced        int  // multiplies strength-reduced to shift/add
	LoadsForwarded int  // loads replaced by register moves
	LoadsDropped   int  // loads whose destination already held the value
	NopsDropped    int  // recorded nops not re-emitted
	PeepSaved      int  // instructions removed by the peephole window
	CounterActive  bool // side-exit stubs bump the counter word
}

// Wins reports the number of instruction-level improvements the trace
// pass made (excluding control-flow edits, which Plan tracks).
func (s CompileStats) Wins() int {
	return s.Folded + s.Reduced + s.LoadsForwarded + s.LoadsDropped + s.PeepSaved
}

// Compile re-emits the plan through a: the optimized trace first, then
// the side-exit stubs, then a verbatim cold copy of the original body.
// The assembler must be fresh (before Begin) and on the same backend the
// recording was captured from.  The function is named after the recording
// with a "#sb" suffix so profilers attribute its PCs separately from the
// tier-2 body's.
func (p *Plan) Compile(a *core.Asm) (*core.Func, CompileStats, error) {
	var stats CompileStats
	a.SetName(p.rec.Name + "#sb")
	if _, err := a.BeginFromRecording(p.rec); err != nil {
		return nil, stats, err
	}

	// Side-exit counter ABI: a base register holding CounterAddr and a
	// scratch for the increment, both provably outside the recording's
	// register set so neither the trace nor the cold copy can observe
	// them.  When no such pair exists the stubs silently stop counting
	// (de-optimization loses its signal; correctness is unaffected).
	cntBase, cntTmp := core.NoReg, core.NoReg
	if p.opt.CounterAddr != 0 && p.SideExits > 0 {
		if regs := pickFreeRegs(a, p.rec.UsedRegs(), 2); regs != nil {
			cntBase, cntTmp = regs[0], regs[1]
			a.SetI(core.TypeP, cntBase, int64(p.opt.CounterAddr))
			stats.CounterActive = true
		}
	}

	w := newWriter(a, &stats)

	traceLabels := make(map[int]core.Label, len(p.traceLabel))
	for b := range p.traceLabel {
		traceLabels[b] = a.NewLabel()
	}
	var coldLabels []core.Label
	if p.coldNeeded {
		coldLabels = make([]core.Label, len(p.blocks))
		for i := range coldLabels {
			coldLabels[i] = a.NewLabel()
		}
	}

	type stub struct {
		label core.Label
		to    int
	}
	var stubs []stub

	// Pass 1: the optimized trace.
	for _, step := range p.steps {
		blk := &p.blocks[step.block]
		if l, ok := traceLabels[step.block]; ok {
			// A loop target: something jumps here, so every tracked fact
			// dies with the bind.
			w.bind(l)
		}
		for _, ev := range blk.body() {
			w.insn(ev)
		}
		tev, hasTerm := blk.term()
		if step.emitBranch {
			var target core.Label
			switch {
			case step.brTrace:
				target = traceLabels[step.brTo]
			case step.brStub:
				l := a.NewLabel()
				stubs = append(stubs, stub{l, step.brTo})
				target = l
			default:
				target = coldLabels[step.brTo]
			}
			w.branch(tev, step.brOp, target)
		} else if hasTerm && (tev.Kind == core.RecRet || tev.Kind == core.RecRetVoid) {
			w.insn(tev)
		}
		// Straightened jumps (hasTerm, RecJmp, !emitJmp) vanish here.
		if step.emitJmp {
			if step.jmpTrace {
				w.jmp(traceLabels[step.jmpTo])
			} else {
				w.jmp(coldLabels[step.jmpTo])
			}
		}
	}
	w.flush()
	stats.PeepSaved = w.w.Saved

	// Pass 2: side-exit stubs — count, then jump into the cold body.
	for _, s := range stubs {
		a.Bind(s.label)
		if cntBase != core.NoReg {
			a.LdI(core.TypeI, cntTmp, cntBase, 0)
			a.ALUI(core.OpAdd, core.TypeI, cntTmp, cntTmp, 1)
			a.StI(core.TypeI, cntTmp, cntBase, 0)
		}
		a.Jmp(coldLabels[s.to])
	}

	// Pass 3: the cold copy — the original body replayed verbatim with
	// labels remapped into this build, so every side exit lands in code
	// with exactly the recorded semantics.  Blocks that acquired a trace
	// label shrink to a redirect: jumping to their trace copy is safe
	// because the optimizer resets all state at trace labels.
	if p.coldNeeded {
		mapLabel := func(l core.Label) core.Label {
			if b, ok := p.labelBlock[l]; ok {
				return coldLabels[b]
			}
			return l // unreachable: Form verified every target binds
		}
		for bi := range p.blocks {
			a.Bind(coldLabels[bi])
			if tl, ok := traceLabels[bi]; ok {
				a.Jmp(tl)
				continue
			}
			for _, ev := range p.blocks[bi].events {
				a.Replay(ev, mapLabel)
			}
		}
	}

	fn, err := a.End()
	if err != nil {
		return nil, stats, fmt.Errorf("superblock: compile %s: %w", p.rec.Name, err)
	}
	return fn, stats, nil
}

// pickFreeRegs allocates n registers that the recording never mentions.
// Registers the allocator grants from inside the recording's set are held
// aside and released afterward; the returned registers stay allocated for
// the function's lifetime.
func pickFreeRegs(a *core.Asm, used map[core.Reg]bool, n int) []core.Reg {
	var held, out []core.Reg
	for len(out) < n {
		r, err := a.GetReg(core.Temp)
		if err != nil {
			r, err = a.GetReg(core.Var)
		}
		if err != nil {
			break
		}
		if used[r] {
			held = append(held, r)
		} else {
			out = append(out, r)
		}
	}
	for _, r := range held {
		a.PutReg(r)
	}
	if len(out) < n {
		for _, r := range out {
			a.PutReg(r)
		}
		return nil
	}
	return out
}

// memKey identifies one tracked memory word: base register, immediate
// offset, and access type.
type memKey struct {
	base core.Reg
	off  int64
	t    core.Type
}

// writer is the trace-pass emitter: a peephole window plus cross-block
// constant and memory tracking.  Tracking is linear along the trace,
// which is sound because the trace has a single entry and all state
// resets at every bound label.
type writer struct {
	a     *core.Asm
	w     *peep.Asm
	bk    core.Backend
	ptr   int
	stats *CompileStats

	// consts holds known TypeI register values (canonically sign-
	// extended 32-bit).  Only TypeI is tracked: it is the one type whose
	// ALU semantics are identical across the 32- and 64-bit backends.
	consts map[core.Reg]int64
	// mem maps a tracked address to the register last known to hold its
	// value (from a store of it or a load into it).
	mem map[memKey]core.Reg
}

func newWriter(a *core.Asm, stats *CompileStats) *writer {
	return &writer{
		a:      a,
		w:      peep.New(a),
		bk:     a.Backend(),
		ptr:    a.Backend().PtrBytes(),
		stats:  stats,
		consts: make(map[core.Reg]int64),
		mem:    make(map[memKey]core.Reg),
	}
}

func (w *writer) reset() {
	w.consts = make(map[core.Reg]int64)
	w.mem = make(map[memKey]core.Reg)
}

// invalidate kills every fact involving register r: its constant, every
// address based on it, and every address whose cached value lives in it.
func (w *writer) invalidate(r core.Reg) {
	delete(w.consts, r)
	for k, v := range w.mem {
		if k.base == r || v == r {
			delete(w.mem, k)
		}
	}
}

// fwdOK reports whether t is safe for memory forwarding: full-width
// integer/pointer accesses only.  Subword accesses truncate and extend
// (a register move is not equivalent), and float loads move bit patterns
// between register files.
func (w *writer) fwdOK(t core.Type) bool {
	return !t.IsFloat() && !t.IsSubWord() && t.Size(w.ptr) == w.ptr
}

// reducibleMul reports whether multiply-by-constant strength reduction
// is legal for type t on this backend.  Unlike constant folding (TypeI
// only — foldI models 32-bit semantics), the shift/add rewrite is
// width-generic: wrapping two's-complement multiply by a constant equals
// the same shift/add sequence at any fixed register width, so 64-bit
// accumulator loops on alpha reduce too.  Types whose multiply or
// substitute ops expand to emulation helpers are excluded (the helper
// call's stack traffic must stay identical to tier 2's).
func (w *writer) reducibleMul(t core.Type) bool {
	switch t {
	case core.TypeI, core.TypeU, core.TypeL, core.TypeUL:
	default:
		return false
	}
	for _, op := range []core.Op{core.OpMul, core.OpLsh, core.OpAdd, core.OpSub} {
		if w.emulated(op, t) {
			return false
		}
	}
	return true
}

func (w *writer) emulated(op core.Op, t core.Type) bool {
	// Emulated operations expand to a runtime-helper call that spills
	// scratch state below the stack pointer.  Folding one away would make
	// tier-3's dead-stack bytes differ from tier-2's, which the
	// differential oracle's memory compare would flag — so they are
	// always re-emitted.
	_, ok := w.bk.EmulatedOp(op, t)
	return ok
}

func (w *writer) bind(l core.Label) {
	w.w.Bind(l)
	w.reset()
}

func (w *writer) jmp(l core.Label) { w.w.Jmp(l) }
func (w *writer) flush()           { w.w.Flush() }

// branch emits the (possibly inverted) terminator branch with its
// recorded operands.
func (w *writer) branch(ev core.RecEvent, op core.Op, target core.Label) {
	if ev.Kind == core.RecBr {
		w.w.Br(op, ev.T, ev.Rs1, ev.Rs2, target)
	} else {
		w.w.BrI(op, ev.T, ev.Rs1, ev.Imm, target)
	}
}

// insn re-emits one recorded body instruction through the optimizer.
func (w *writer) insn(ev core.RecEvent) {
	switch ev.Kind {
	case core.RecALU:
		w.alu(ev)
	case core.RecALUI:
		w.alui(ev)
	case core.RecUnary:
		w.unary(ev)
	case core.RecSetI:
		w.invalidate(ev.Rd)
		w.w.SetI(ev.T, ev.Rd, ev.Imm)
		if ev.T == core.TypeI {
			w.consts[ev.Rd] = int64(int32(ev.Imm))
		}
	case core.RecSetF:
		w.invalidate(ev.Rd)
		w.w.SetF(ev.Rd, float32(ev.F))
	case core.RecSetD:
		w.invalidate(ev.Rd)
		w.w.SetD(ev.Rd, ev.F)
	case core.RecLd:
		w.invalidate(ev.Rd)
		w.w.Ld(ev.T, ev.Rd, ev.Rs1, ev.Rs2)
	case core.RecLdI:
		w.load(ev)
	case core.RecSt:
		// Register-offset store: address unknown, all bets off.
		w.mem = make(map[memKey]core.Reg)
		w.w.St(ev.T, ev.Rd, ev.Rs1, ev.Rs2)
	case core.RecStI:
		w.store(ev)
	case core.RecNop:
		w.stats.NopsDropped++
	case core.RecCvt:
		w.invalidate(ev.Rd)
		w.w.Cvt(ev.T, ev.T2, ev.Rd, ev.Rs1)
	case core.RecExt:
		// A hardware extension's register writes are opaque; drop
		// everything rather than model them.
		w.reset()
		w.w.Ext(ev.Name, ev.T, ev.Rd, ev.Srcs...)
	case core.RecRet:
		w.w.Ret(ev.T, ev.Rs1)
	case core.RecRetVoid:
		w.w.RetVoid()
	}
}

func (w *writer) unary(ev core.RecEvent) {
	var v int64
	prop := false
	if ev.Op == core.OpMov && ev.T == core.TypeI {
		v, prop = w.consts[ev.Rs1]
	}
	w.invalidate(ev.Rd)
	w.w.Unary(ev.Op, ev.T, ev.Rd, ev.Rs1)
	if prop {
		w.consts[ev.Rd] = v
	}
}

func (w *writer) alu(ev core.RecEvent) {
	op, t := ev.Op, ev.T
	if t == core.TypeI && !w.emulated(op, t) {
		v1, ok1 := w.consts[ev.Rs1]
		v2, ok2 := w.consts[ev.Rs2]
		if ok1 && ok2 {
			if res, ok := foldI(op, v1, v2); ok {
				w.invalidate(ev.Rd)
				if fitsSetI(res) || op == core.OpMul || op == core.OpDiv || op == core.OpMod {
					// A one-instruction constant load (or any load at all
					// for the multi-cycle ops) beats redoing the ALU.
					w.w.SetI(t, ev.Rd, res)
					w.stats.Folded++
				} else {
					w.w.ALU(op, t, ev.Rd, ev.Rs1, ev.Rs2)
				}
				w.consts[ev.Rd] = res
				return
			}
		}
	}
	if op == core.OpMul && w.reducibleMul(t) {
		// The consts map holds full register values (SetI sign-extends),
		// so a tracked operand constant is valid as the multiplier at any
		// register width.
		v1, ok1 := w.consts[ev.Rs1]
		v2, ok2 := w.consts[ev.Rs2]
		if k, src, ok := mulOperand(v1, ok1, v2, ok2, ev.Rs1, ev.Rs2); ok &&
			reduce.MulNoTemp(t, ev.Rd, src, k) {
			w.w.Flush()
			reduce.MulI(w.a, t, ev.Rd, src, k)
			w.invalidate(ev.Rd)
			w.stats.Reduced++
			return
		}
	}
	w.invalidate(ev.Rd)
	w.w.ALU(op, t, ev.Rd, ev.Rs1, ev.Rs2)
}

func (w *writer) alui(ev core.RecEvent) {
	op, t := ev.Op, ev.T
	if t == core.TypeI && !w.emulated(op, t) {
		if v, okc := w.consts[ev.Rs1]; okc {
			if res, ok := foldI(op, v, ev.Imm); ok {
				w.invalidate(ev.Rd)
				if fitsSetI(res) || op == core.OpMul || op == core.OpDiv || op == core.OpMod {
					w.w.SetI(t, ev.Rd, res)
					w.stats.Folded++
				} else {
					w.w.ALUI(op, t, ev.Rd, ev.Rs1, ev.Imm)
				}
				w.consts[ev.Rd] = res
				return
			}
		}
	}
	if op == core.OpMul && w.reducibleMul(t) && reduce.MulNoTemp(t, ev.Rd, ev.Rs1, ev.Imm) {
		w.w.Flush()
		reduce.MulI(w.a, t, ev.Rd, ev.Rs1, ev.Imm)
		w.invalidate(ev.Rd)
		w.stats.Reduced++
		return
	}
	w.invalidate(ev.Rd)
	w.w.ALUI(op, t, ev.Rd, ev.Rs1, ev.Imm)
}

func (w *writer) load(ev core.RecEvent) {
	t := ev.T
	if !w.fwdOK(t) {
		// Subword and float accesses bypass the peephole window too: its
		// store-to-load rule must never see a subword pair (a register
		// move does not model the truncate/extend).
		w.invalidate(ev.Rd)
		w.w.Flush()
		w.a.LdI(t, ev.Rd, ev.Rs1, ev.Imm)
		return
	}
	key := memKey{ev.Rs1, ev.Imm, t}
	if src, ok := w.mem[key]; ok {
		if src == ev.Rd {
			// The destination already holds exactly this value.
			w.stats.LoadsDropped++
			return
		}
		v, hasConst := w.consts[src]
		w.invalidate(ev.Rd)
		w.w.Unary(core.OpMov, t, ev.Rd, src)
		if hasConst && t == core.TypeI {
			w.consts[ev.Rd] = v
		}
		w.stats.LoadsForwarded++
		return
	}
	w.invalidate(ev.Rd)
	w.w.LdI(t, ev.Rd, ev.Rs1, ev.Imm)
	if ev.Rd != ev.Rs1 {
		// After the load rd holds *[rs1+off] — unless rd was the base.
		w.mem[key] = ev.Rd
	}
}

func (w *writer) store(ev core.RecEvent) {
	t := ev.T
	size := int64(t.Size(w.ptr))
	for k := range w.mem {
		if k.base != ev.Rs1 {
			// Two different base registers may alias; only same-base
			// disjoint ranges are provably safe to keep.
			delete(w.mem, k)
			continue
		}
		if ev.Imm < k.off+int64(k.t.Size(w.ptr)) && k.off < ev.Imm+size {
			delete(w.mem, k)
		}
	}
	if !w.fwdOK(t) {
		w.w.Flush()
		w.a.StI(t, ev.Rd, ev.Rs1, ev.Imm)
		return
	}
	w.w.StI(t, ev.Rd, ev.Rs1, ev.Imm)
	w.mem[memKey{ev.Rs1, ev.Imm, t}] = ev.Rd
}

// mulOperand picks the constant operand of a register-register multiply.
func mulOperand(v1 int64, ok1 bool, v2 int64, ok2 bool, rs1, rs2 core.Reg) (k int64, src core.Reg, ok bool) {
	if ok2 {
		return v2, rs1, true
	}
	if ok1 {
		return v1, rs2, true
	}
	return 0, core.NoReg, false
}

// foldI evaluates op over two TypeI constants with 32-bit wraparound.
// Division hazards (zero divisor, MinInt32/-1 overflow) refuse to fold so
// the original instruction keeps its trap behavior.  Shifts never fold:
// the backends differ in how they mask out-of-range counts.
func foldI(op core.Op, a, b int64) (int64, bool) {
	x, y := int32(a), int32(b)
	switch op {
	case core.OpAdd:
		return int64(x + y), true
	case core.OpSub:
		return int64(x - y), true
	case core.OpMul:
		return int64(x * y), true
	case core.OpAnd:
		return int64(x & y), true
	case core.OpOr:
		return int64(x | y), true
	case core.OpXor:
		return int64(x ^ y), true
	case core.OpDiv:
		if y == 0 || (x == math.MinInt32 && y == -1) {
			return 0, false
		}
		return int64(x / y), true
	case core.OpMod:
		if y == 0 || (x == math.MinInt32 && y == -1) {
			return 0, false
		}
		return int64(x % y), true
	}
	return 0, false
}

// fitsSetI reports whether a folded constant loads in one instruction on
// every backend (all three materialize 16-bit immediates in one word).
func fitsSetI(v int64) bool { return v >= -32768 && v <= 32767 }
