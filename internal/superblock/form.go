package superblock

import (
	"fmt"

	"repro/internal/core"
)

// block is one basic block of the recorded function: the labels bound at
// its head and its instruction events (terminator included, RecBind
// events excluded — they become labels).
type block struct {
	labels []core.Label
	events []core.RecEvent
}

// term returns the block's terminating event, if it has one.  Blocks
// without a terminator fall through to the next block in recording order.
func (b *block) term() (core.RecEvent, bool) {
	if n := len(b.events); n > 0 {
		ev := b.events[n-1]
		switch ev.Kind {
		case core.RecBr, core.RecBrI, core.RecJmp, core.RecRet, core.RecRetVoid:
			return ev, true
		}
	}
	return core.RecEvent{}, false
}

// body returns the block's events without the terminator.
func (b *block) body() []core.RecEvent {
	if _, ok := b.term(); ok {
		return b.events[:len(b.events)-1]
	}
	return b.events
}

// traceStep is one block's position in the selected trace, with the
// control-flow edits formation decided for its terminator.
type traceStep struct {
	block int

	// Conditional-branch rewrite.  When emitBranch is set the trace
	// emits brOp (possibly the recorded op inverted) with the recorded
	// operands, targeting block brTo — through its trace label when
	// brTrace (a loop back into the trace), through a counting side-exit
	// stub when brStub (a decisively cold direction), and straight to
	// its cold-copy label otherwise (an indecisive trace exit).
	emitBranch bool
	brOp       core.Op
	brTo       int
	brTrace    bool
	brStub     bool

	// Unconditional tail.  When emitJmp is set the trace emits a jump to
	// block jmpTo after the branch (trace label when jmpTrace, cold-copy
	// label otherwise).
	emitJmp  bool
	jmpTo    int
	jmpTrace bool

	// next is the block the trace continues into, -1 when the trace ends
	// at this step.
	next int
}

// Plan is a formed superblock: the block decomposition of the recording
// plus the selected trace and its control-flow edits.  Compile turns it
// into an installable function.
type Plan struct {
	rec        *core.Recording
	opt        Options
	blocks     []block
	labelBlock map[core.Label]int
	steps      []traceStep
	traceLabel map[int]bool // blocks needing an in-trace label (loop targets)
	coldNeeded bool

	// Formation statistics.
	Straightened int // unconditional jumps removed from the trace
	Inverted     int // branches inverted so the hot side falls through
	SideExits    int // counting side-exit stubs
	Loops        int // branches kept as loops back into the trace
}

// TraceBlocks returns the number of blocks in the selected trace.
func (p *Plan) TraceBlocks() int { return len(p.steps) }

// Interesting reports whether formation changed anything: at least one
// straightened jump, inverted branch, or decisive side exit.  A plan that
// is not interesting re-emits the original control flow and is not worth
// installing (the differential oracle compiles it anyway).
func (p *Plan) Interesting() bool {
	return p.Straightened+p.Inverted+p.SideExits > 0
}

// Form selects a superblock trace through rec guided by bias.  It returns
// an error when the recording is ineligible for replay or structurally
// malformed (a branch to an unbound label, a fall through past the last
// block); jit treats any error as "stay on tier 2".
func Form(rec *core.Recording, bias BiasSource, opt Options) (*Plan, error) {
	if ok, why := rec.Eligible(); !ok {
		return nil, fmt.Errorf("superblock: %s does not replay: %s", rec.Name, why)
	}
	opt = opt.withDefaults()
	p := &Plan{
		rec:        rec,
		opt:        opt,
		labelBlock: make(map[core.Label]int),
		traceLabel: make(map[int]bool),
	}
	p.buildBlocks()
	if len(p.blocks) == 0 {
		return nil, fmt.Errorf("superblock: %s has no instructions", rec.Name)
	}
	if err := p.selectTrace(bias); err != nil {
		return nil, err
	}
	for _, st := range p.steps {
		if (st.emitBranch && !st.brTrace) || (st.emitJmp && !st.jmpTrace) {
			p.coldNeeded = true
		}
	}
	cFormed.Inc()
	return p, nil
}

// buildBlocks splits the recording's instruction events at labels and
// terminators.  Consecutive binds accumulate on one block; allocation
// events are skipped (BeginFromRecording replays them).
func (p *Plan) buildBlocks() {
	var cur block
	flush := func() {
		p.blocks = append(p.blocks, cur)
		cur = block{}
	}
	for _, ev := range p.rec.Events {
		if ev.Kind.IsAlloc() {
			continue
		}
		switch ev.Kind {
		case core.RecBind:
			if len(cur.events) > 0 {
				flush()
			}
			cur.labels = append(cur.labels, ev.Label)
		case core.RecBr, core.RecBrI, core.RecJmp, core.RecRet, core.RecRetVoid:
			cur.events = append(cur.events, ev)
			flush()
		default:
			cur.events = append(cur.events, ev)
		}
	}
	if len(cur.events) > 0 || len(cur.labels) > 0 {
		flush()
	}
	for i, b := range p.blocks {
		for _, l := range b.labels {
			p.labelBlock[l] = i
		}
	}
}

// selectTrace walks from the entry block, growing the trace through the
// likely direction of each branch.
func (p *Plan) selectTrace(bias BiasSource) error {
	visited := make(map[int]bool)
	cur := 0
	for {
		visited[cur] = true
		step := traceStep{block: cur, next: -1}
		ev, hasTerm := p.blocks[cur].term()
		switch {
		case !hasTerm:
			// Falls through to the next block in recording order.
			nxt := cur + 1
			if nxt >= len(p.blocks) {
				return fmt.Errorf("superblock: %s falls through past the last block", p.rec.Name)
			}
			if visited[nxt] {
				p.traceLabel[nxt] = true
				step.emitJmp, step.jmpTo, step.jmpTrace = true, nxt, true
				p.Loops++
			} else {
				step.next = nxt
			}

		case ev.Kind == core.RecRet || ev.Kind == core.RecRetVoid:
			// Replayed verbatim; the trace ends here.

		case ev.Kind == core.RecJmp:
			tgt, ok := p.labelBlock[ev.Label]
			if !ok {
				return fmt.Errorf("superblock: %s jumps to an unbound label", p.rec.Name)
			}
			if visited[tgt] {
				p.traceLabel[tgt] = true
				step.emitJmp, step.jmpTo, step.jmpTrace = true, tgt, true
				p.Loops++
			} else {
				// Straightened: the target's body follows inline and the
				// jump disappears.
				step.next = tgt
				p.Straightened++
			}

		default: // RecBr / RecBrI
			tgt, ok := p.labelBlock[ev.Label]
			if !ok {
				return fmt.Errorf("superblock: %s branches to an unbound label", p.rec.Name)
			}
			fall := cur + 1
			if fall >= len(p.blocks) {
				return fmt.Errorf("superblock: %s branch falls through past the last block", p.rec.Name)
			}
			taken, not, haveBias := bias(ev.Site)
			total := taken + not
			var frac float64
			if total > 0 {
				frac = float64(taken) / float64(total)
			}
			trusted := haveBias && total >= p.opt.MinSamples
			// Float comparisons are never inverted: with a NaN operand
			// both a branch and its inversion can be not-taken, so the
			// inverted form is not equivalent.
			decisiveTaken := trusted && frac >= p.opt.MinBias && !ev.T.IsFloat()
			decisiveFall := trusted && frac <= 1-p.opt.MinBias

			switch {
			case visited[tgt]:
				// Loop back into the trace: keep the branch, retarget it
				// at the in-trace copy of its target.
				p.traceLabel[tgt] = true
				step.emitBranch, step.brOp, step.brTo, step.brTrace = true, ev.Op, tgt, true
				p.Loops++
				if visited[fall] {
					p.traceLabel[fall] = true
					step.emitJmp, step.jmpTo, step.jmpTrace = true, fall, true
					p.Loops++
				} else {
					step.next = fall
				}
			case visited[fall] && decisiveTaken:
				// The fallthrough loops back into the trace but the taken
				// side is decisively hot: invert so the hot side falls
				// through, branching back into the trace on the cold side.
				p.traceLabel[fall] = true
				step.emitBranch, step.brOp, step.brTo, step.brTrace = true, ev.Op.InvertBranch(), fall, true
				step.next = tgt
				p.Inverted++
				p.Loops++
			case visited[fall]:
				// Fallthrough loops back into the trace; keep the branch
				// as the exit (counted when the profile says it is rare).
				p.traceLabel[fall] = true
				step.emitBranch, step.brOp, step.brTo = true, ev.Op, tgt
				if decisiveFall {
					step.brStub = true
					p.SideExits++
				}
				step.emitJmp, step.jmpTo, step.jmpTrace = true, fall, true
				p.Loops++
			case decisiveTaken:
				// Hot side is the taken target: invert the branch so the
				// trace falls into it; the now-rare taken direction exits
				// through a counting stub to the cold fallthrough block.
				step.emitBranch, step.brOp, step.brTo, step.brStub = true, ev.Op.InvertBranch(), fall, true
				step.next = tgt
				p.Inverted++
				p.SideExits++
			case decisiveFall:
				// Hot side is the fallthrough: keep the branch, route its
				// rare taken direction through a counting stub.
				step.emitBranch, step.brOp, step.brTo, step.brStub = true, ev.Op, tgt, true
				step.next = fall
				p.SideExits++
			default:
				// Indecisive (or float-taken-biased): end the trace with
				// the original control flow into the cold copy.  These
				// exits are deliberately NOT counted — an even 50/50
				// branch exiting every other call is normal, not a bias
				// flip, and must not feed the de-optimization signal.
				step.emitBranch, step.brOp, step.brTo = true, ev.Op, tgt
				step.emitJmp, step.jmpTo = true, fall
			}
		}

		p.steps = append(p.steps, step)
		if step.next < 0 {
			return nil
		}
		if len(p.steps) >= p.opt.MaxBlocks {
			// Trace length bound: convert the continuation into a cold
			// exit.
			last := &p.steps[len(p.steps)-1]
			last.emitJmp, last.jmpTo, last.jmpTrace = true, last.next, false
			last.next = -1
			return nil
		}
		cur = step.next
	}
}
