// Package superblock is the profile-guided optimizing tier built on top
// of VCODE's portable interface — the shape of client-side optimizer the
// paper argues the substrate enables (§5.4 strength reduction, §6.2
// peephole) without any intermediate representation in VCODE itself.
//
// The input is a core.Recording (the portable-emission trace of a tier-2
// compile) plus branch-bias data from profile.EdgeProfiler.  Formation
// (Form) walks the recording's control-flow graph and straightens a
// single-entry trace — a superblock — through the likely direction of
// each decisively biased branch: likely-taken branches are inverted so
// the hot path falls through, unconditional jumps inside the trace
// disappear, and the cold directions become side-exit stubs that jump to
// an unmodified copy of the original body.  Compilation (Plan.Compile)
// re-emits the trace through internal/peep with cross-block rewrites that
// are only legal because the trace has one entry: constant folding,
// strength reduction of multiplies by known constants (internal/reduce),
// and store-to-load/load-to-load forwarding across the straightened
// branches.
//
// Every rewrite is value- and destination-preserving: no instruction's
// destination register is removed or retargeted, only the sequence
// computing it changes.  A side exit therefore observes exactly the
// architectural state the original body would have at that point, which
// is what makes the stubs a plain jump rather than a state-repair
// sequence — and what the tier-2 vs tier-3 differential oracle in this
// package's tests checks across the full regtest matrix.
//
// Side-exit stubs optionally bump a counter in simulated memory (the
// side-exit ABI: one word at Options.CounterAddr, incremented before the
// jump to the cold body).  jit.Adaptive polls it to detect bias flips and
// de-optimize back to tier 2.
package superblock

import "repro/internal/telemetry"

// Options bounds formation and configures the side-exit ABI.
type Options struct {
	// MinBias is the taken (or not-taken) fraction at which a branch
	// counts as decisively biased.  Zero selects 0.85.
	MinBias float64
	// MinSamples is the minimum number of recorded events at a branch
	// before its bias is trusted.  Zero selects 4.
	MinSamples uint64
	// MaxBlocks bounds the trace length.  Zero selects 64.
	MaxBlocks int
	// CounterAddr is the simulated address of the side-exit counter
	// word; zero disables counter stubs (the differential oracle runs
	// this way so tier-2 and tier-3 memory images stay comparable).
	CounterAddr uint64
}

func (o Options) withDefaults() Options {
	if o.MinBias == 0 {
		o.MinBias = 0.85
	}
	if o.MinSamples == 0 {
		o.MinSamples = 4
	}
	if o.MaxBlocks == 0 {
		o.MaxBlocks = 64
	}
	return o
}

// BiasSource reports profile counts for the conditional branch emitted at
// code-buffer word index site of the recorded function.  ok is false when
// the profile has no data for that branch.
type BiasSource func(site int) (taken, notTaken uint64, ok bool)

// Telemetry counters: formation attempts that produced a plan, optimized
// bodies actually installed, side exits taken at runtime (polled from the
// counter word), and de-optimizations.
var (
	cFormed    = telemetry.Default.Counter("superblock.formed")
	cInstalled = telemetry.Default.Counter("superblock.installed")
	cSideExits = telemetry.Default.Counter("superblock.side_exits")
	cDeopt     = telemetry.Default.Counter("superblock.deopt")
)

// NoteInstalled records that an optimized body was installed.
func NoteInstalled() { cInstalled.Inc() }

// NoteSideExits adds n observed runtime side exits.
func NoteSideExits(n uint64) { cSideExits.Add(n) }

// NoteDeopt records a de-optimization (tier-3 body evicted after a bias
// flip).
func NoteDeopt() { cDeopt.Inc() }
