package superblock_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/profile"
	"repro/internal/superblock"
)

func mipsBackend() core.Backend { return mips.New() }

func mipsMachine() *core.Machine {
	m := mem.New(1<<22, false)
	return core.NewMachine(mips.New(), mips.NewCPU(m), m)
}

// alwaysTaken / alwaysFall are synthetic bias sources for unit tests.
func alwaysTaken(int) (uint64, uint64, bool) { return 100, 0, true }
func alwaysFall(int) (uint64, uint64, bool)  { return 0, 100, true }
func noBias(int) (uint64, uint64, bool)      { return 0, 0, false }

func recordClamp(t *testing.T, bk core.Backend) (*core.Func, *core.Recording) {
	t.Helper()
	a := core.NewAsm(bk)
	a.Record(true)
	fn, err := buildClamp(a)
	if err != nil {
		t.Fatalf("build clamp: %v", err)
	}
	rec := a.TakeRecording()
	if rec == nil {
		t.Fatal("no recording")
	}
	return fn, rec
}

// TestFormClampShape checks the trace decisions on the clamp CFG under a
// profile where both guards decisively fall through: both cold targets
// become counting side exits and the tail jump is straightened away.
func TestFormClampShape(t *testing.T) {
	_, rec := recordClamp(t, mipsBackend())
	plan, err := superblock.Form(rec, alwaysFall, superblock.Options{})
	if err != nil {
		t.Fatalf("form: %v", err)
	}
	if plan.SideExits != 2 {
		t.Errorf("side exits: got %d, want 2", plan.SideExits)
	}
	if plan.Straightened != 1 {
		t.Errorf("straightened: got %d, want 1", plan.Straightened)
	}
	if plan.Inverted != 0 {
		t.Errorf("inverted: got %d, want 0", plan.Inverted)
	}
	if !plan.Interesting() {
		t.Error("plan should be interesting")
	}
	// Entry guards + hot body + straightened-into out block.
	if plan.TraceBlocks() < 4 {
		t.Errorf("trace blocks: got %d, want >=4", plan.TraceBlocks())
	}
}

// TestFormIndecisive checks that an untrained profile forms a plan that
// changes nothing — the jit uses Interesting() to skip installing these.
func TestFormIndecisive(t *testing.T) {
	_, rec := recordClamp(t, mipsBackend())
	plan, err := superblock.Form(rec, noBias, superblock.Options{})
	if err != nil {
		t.Fatalf("form: %v", err)
	}
	if plan.SideExits != 0 || plan.Inverted != 0 {
		t.Errorf("indecisive profile produced exits=%d inverted=%d", plan.SideExits, plan.Inverted)
	}
}

// TestFormInverts checks that a decisively taken branch is inverted so the
// hot target falls through.
func TestFormInverts(t *testing.T) {
	_, rec := recordClamp(t, mipsBackend())
	plan, err := superblock.Form(rec, alwaysTaken, superblock.Options{})
	if err != nil {
		t.Fatalf("form: %v", err)
	}
	if plan.Inverted < 1 {
		t.Errorf("inverted: got %d, want >=1", plan.Inverted)
	}
}

// TestFormIneligible checks that recordings with unsupported events (here,
// an intra-function call through Setfunc-less emission) are rejected.
func TestFormIneligible(t *testing.T) {
	bk := mipsBackend()
	a := core.NewAsm(bk)
	a.Record(true)
	a.SetName("caller")
	if _, err := a.BeginTypes([]core.Type{core.TypeI}, core.NonLeaf); err != nil {
		t.Fatal(err)
	}
	other := core.NewAsm(bk)
	other.SetName("callee")
	if _, err := other.BeginTypes(nil, core.Leaf); err != nil {
		t.Fatal(err)
	}
	other.RetVoid()
	callee, err := other.End()
	if err != nil {
		t.Fatal(err)
	}
	a.CallFunc(callee)
	a.RetVoid()
	if _, err := a.End(); err != nil {
		t.Fatal(err)
	}
	rec := a.TakeRecording()
	if rec == nil {
		t.Fatal("no recording")
	}
	if _, err := superblock.Form(rec, noBias, superblock.Options{}); err == nil {
		t.Fatal("expected Form to reject a recording with a call")
	}
}

// TestSideExitCounter compiles clamp with a live counter word and checks
// the stubs bump it exactly once per cold-path call — the signal
// jit.Adaptive polls for de-optimization.
func TestSideExitCounter(t *testing.T) {
	bk := mipsBackend()
	m2 := mipsMachine()
	m3 := mipsMachine()
	cnt2, err := m2.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	cnt3, err := m3.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if cnt2 != cnt3 {
		t.Fatalf("counter addresses diverge: %#x vs %#x", cnt2, cnt3)
	}

	fn2, rec := recordClamp(t, bk)
	if err := m2.Install(fn2); err != nil {
		t.Fatal(err)
	}
	ep := profile.NewEdgeProfiler(1)
	if err := ep.Attach(m2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m2.Call(fn2, core.I(int32(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := superblock.Form(rec, func(site int) (uint64, uint64, bool) {
		return ep.EdgeAt(fn2.Addr() + 4*uint64(site))
	}, superblock.Options{CounterAddr: cnt3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SideExits != 2 {
		t.Fatalf("side exits: got %d, want 2", plan.SideExits)
	}
	fn3, stats, err := plan.Compile(core.NewAsm(bk))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CounterActive {
		t.Fatal("counter stubs not emitted")
	}
	if err := m3.Install(fn3); err != nil {
		t.Fatal(err)
	}

	readCounter := func() uint64 {
		v, err := m3.Mem().Load(cnt3, 4)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	call := func(x int32) uint64 {
		v, err := m3.Call(fn3, core.I(x))
		if err != nil {
			t.Fatalf("clamp(%d): %v", x, err)
		}
		return v.Bits
	}

	if got := call(42); got != 42 {
		t.Fatalf("clamp(42) = %d", got)
	}
	if c := readCounter(); c != 0 {
		t.Fatalf("hot-path call bumped counter to %d", c)
	}
	if got := call(-5); got != 0 {
		t.Fatalf("clamp(-5) = %d", got)
	}
	if got := call(500); got != 100 {
		t.Fatalf("clamp(500) = %d", got)
	}
	if c := readCounter(); c != 2 {
		t.Fatalf("counter after two cold calls: got %d, want 2", c)
	}
	for i := 0; i < 5; i++ {
		call(-1)
	}
	if c := readCounter(); c != 7 {
		t.Fatalf("counter after five more cold calls: got %d, want 7", c)
	}
}

// TestConstFold checks constant folding and strength reduction through a
// straight-line chain, asserting both the rewrite statistics and the
// executed result.
func TestConstFold(t *testing.T) {
	bk := mipsBackend()
	a := core.NewAsm(bk)
	a.Record(true)
	a.SetName("constfold")
	args, err := a.BeginTypes([]core.Type{core.TypeI}, core.Leaf)
	if err != nil {
		t.Fatal(err)
	}
	x := args[0]
	var c1, c2, c3, r core.Reg
	for _, rr := range []*core.Reg{&c1, &c2, &c3, &r} {
		if *rr, err = a.GetReg(core.Temp); err != nil {
			t.Fatal(err)
		}
	}
	a.SetI(core.TypeI, c1, 3)
	a.SetI(core.TypeI, c2, 5)
	a.ALU(core.OpAdd, core.TypeI, c3, c1, c2) // fold: 8
	a.ALUI(core.OpMul, core.TypeI, c3, c3, 8) // fold: 64
	a.ALU(core.OpMul, core.TypeI, r, x, c3)   // strength-reduce: x << 6
	a.ALUI(core.OpDiv, core.TypeI, c1, c1, 3) // fold: 1 (div is exact, no trap)
	a.ALU(core.OpAdd, core.TypeI, r, r, c1)
	a.Ret(core.TypeI, r)
	if _, err := a.End(); err != nil {
		t.Fatal(err)
	}
	rec := a.TakeRecording()
	plan, err := superblock.Form(rec, noBias, superblock.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn3, stats, err := plan.Compile(core.NewAsm(bk))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Folded < 3 {
		t.Errorf("folded: got %d, want >=3 (%+v)", stats.Folded, stats)
	}
	if stats.Reduced < 1 {
		t.Errorf("reduced: got %d, want >=1 (%+v)", stats.Reduced, stats)
	}
	m := mipsMachine()
	if err := m.Install(fn3); err != nil {
		t.Fatal(err)
	}
	v, err := m.Call(fn3, core.I(7))
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(7*64 + 1); v.Bits != want {
		t.Fatalf("constfold(7) = %d, want %d", v.Bits, want)
	}
}
