package superblock_test

import (
	"bytes"
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mips"
	"repro/internal/regtest"
	"repro/internal/sparc"
	"repro/internal/superblock"
)

// fuzzMachines builds a small machine pair for one backend.  Fresh
// machines start with identical (zero) architectural state, so the two
// tiers stay bit-identical until the first trap.
func fuzzMachines(name string) (core.Backend, *core.Machine, *core.Machine) {
	switch name {
	case "sparc":
		m1, m2 := mem.New(1<<22, true), mem.New(1<<22, true)
		return sparc.New(), core.NewMachine(sparc.New(), sparc.NewCPU(m1), m1),
			core.NewMachine(sparc.New(), sparc.NewCPU(m2), m2)
	case "alpha":
		m1, m2 := mem.New(1<<22, false), mem.New(1<<22, false)
		return alpha.New(), core.NewMachine(alpha.New(), alpha.NewCPU(m1), m1),
			core.NewMachine(alpha.New(), alpha.NewCPU(m2), m2)
	default:
		m1, m2 := mem.New(1<<22, false), mem.New(1<<22, false)
		return mips.New(), core.NewMachine(mips.New(), mips.NewCPU(m1), m1),
			core.NewMachine(mips.New(), mips.NewCPU(m2), m2)
	}
}

var fuzzOps = []core.Op{core.OpAdd, core.OpSub, core.OpMul, core.OpAnd, core.OpOr, core.OpXor}
var fuzzBrOps = []core.Op{core.OpBeq, core.OpBne, core.OpBlt, core.OpBge, core.OpBgt, core.OpBle}

// buildFuzzLoop decodes the fuzz bytes into a counted loop whose body is
// a statement sequence over {sum, t1, t2}, loads and stores into a data
// buffer, and data-dependent branches to the loop tail or the exit.
func buildFuzzLoop(a *core.Asm, body []byte, dataAddr uint64) (*core.Func, error) {
	a.SetName("fuzzloop")
	args, err := a.BeginTypes([]core.Type{core.TypeI, core.TypeP}, core.Leaf)
	if err != nil {
		return nil, err
	}
	n, p := args[0], args[1]
	_ = dataAddr
	var sum, i, t1, t2 core.Reg
	for _, r := range []*core.Reg{&sum, &i} {
		if *r, err = a.GetReg(core.Var); err != nil {
			return nil, err
		}
	}
	for _, r := range []*core.Reg{&t1, &t2} {
		if *r, err = a.GetReg(core.Temp); err != nil {
			return nil, err
		}
	}
	a.SetI(core.TypeI, sum, 1)
	a.SetI(core.TypeI, t1, 2)
	a.SetI(core.TypeI, t2, 3)
	a.SetI(core.TypeI, i, 0)
	loop, cont, done := a.NewLabel(), a.NewLabel(), a.NewLabel()
	a.Bind(loop)
	a.Br(core.OpBge, core.TypeI, i, n, done)
	regs := []core.Reg{sum, t1, t2}
	for len(body) >= 3 {
		op, sel, imm := body[0], body[1], int64(int8(body[2]))
		body = body[3:]
		rd, rs := regs[sel%3], regs[(sel/3)%3]
		off := int64(op%16) * 4
		switch op % 6 {
		case 0:
			a.ALU(fuzzOps[sel%6], core.TypeI, rd, rd, rs)
		case 1:
			a.ALUI(fuzzOps[sel%6], core.TypeI, rd, rs, imm)
		case 2:
			a.LdI(core.TypeI, rd, p, off)
		case 3:
			a.StI(core.TypeI, rd, p, off)
		case 4:
			tgt := cont
			if sel&0x40 != 0 {
				tgt = done
			}
			a.BrI(fuzzBrOps[sel%6], core.TypeI, rd, imm, tgt)
		case 5:
			a.Unary(core.OpMov, core.TypeI, rd, rs)
		}
	}
	a.Bind(cont)
	a.ALUI(core.OpAdd, core.TypeI, i, i, 1)
	a.Jmp(loop)
	a.Bind(done)
	a.ALU(core.OpAdd, core.TypeI, sum, sum, t1)
	a.ALU(core.OpAdd, core.TypeI, sum, sum, t2)
	a.Ret(core.TypeI, sum)
	return a.End()
}

// FuzzSuperblockDifferential generates small branchy loops from the fuzz
// input, forms a superblock under an arbitrary synthetic branch profile,
// and requires tier-2 and tier-3 to agree on results, traps, registers,
// and data memory on all three backends.  Formation must preserve
// semantics under ANY bias input — the profile only steers which plan is
// chosen, never what it computes — so the fuzzer drives the bias source
// directly instead of training a profiler.
func FuzzSuperblockDifferential(f *testing.F) {
	f.Add([]byte{0, 3, 7, 4, 0x41, 250, 2, 9, 0, 3, 5, 16, 1, 2, 200})
	f.Add([]byte{5, 4, 0x02, 4, 0x45, 1, 0, 0, 0})
	f.Add([]byte{9, 2, 1, 3, 1, 8, 2, 4, 8})
	f.Add(bytes.Repeat([]byte{4, 0x43, 50}, 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		seed := uint32(data[0]) | uint32(data[1])<<8
		body := data[2:]
		if len(body) > 30 {
			body = body[:30]
		}
		bias := func(site int) (uint64, uint64, bool) {
			h := (uint32(site)*2654435761 + seed) >> 4
			switch h % 4 {
			case 0:
				return 100, 0, true
			case 1:
				return 0, 100, true
			case 2:
				return 50, 50, true
			default:
				return 0, 0, false
			}
		}

		for _, tgt := range regtest.Targets() {
			bk, m2, m3 := fuzzMachines(tgt.Name)
			dataAddr, err := m2.Alloc(256)
			if err != nil {
				t.Fatal(err)
			}
			if a3, err := m3.Alloc(256); err != nil || a3 != dataAddr {
				t.Fatalf("data regions diverge: %#x vs %#x (%v)", dataAddr, a3, err)
			}
			a := core.NewAsm(bk)
			a.Record(true)
			fn2, err := buildFuzzLoop(a, body, dataAddr)
			if err != nil {
				return // sticky build error (e.g. too many statements): not a finding
			}
			rec := a.TakeRecording()
			if rec == nil {
				t.Fatalf("%s: no recording", tgt.Name)
			}
			plan, err := superblock.Form(rec, bias, superblock.Options{})
			if err != nil {
				t.Fatalf("%s: form: %v", tgt.Name, err)
			}
			fn3, _, err := plan.Compile(core.NewAsm(bk))
			if err != nil {
				t.Fatalf("%s: compile: %v", tgt.Name, err)
			}
			if err := m2.Install(fn2); err != nil {
				t.Fatal(err)
			}
			if err := m3.Install(fn3); err != nil {
				t.Fatal(err)
			}

			seedData := func(m *core.Machine) {
				buf := make([]byte, 256)
				for i := range buf {
					buf[i] = byte(i*5 + int(seed))
				}
				if err := m.Mem().WriteBytes(dataAddr, buf); err != nil {
					t.Fatal(err)
				}
			}
			ptr := bk.PtrBytes()
			pv := regtest.MakeValue(core.TypeP, dataAddr, ptr)
			for _, n := range []int32{0, 1, 3} {
				seedData(m2)
				seedData(m3)
				v2, err2 := m2.Call(fn2, core.I(n), pv)
				v3, err3 := m3.Call(fn3, core.I(n), pv)
				if (err2 == nil) != (err3 == nil) {
					t.Fatalf("%s n=%d: trap divergence: tier-2 %v, tier-3 %v", tgt.Name, n, err2, err3)
				}
				if err2 != nil {
					break // post-trap junk may diverge; stop this backend
				}
				if v2.Bits != v3.Bits {
					t.Fatalf("%s n=%d: result %#x vs %#x", tgt.Name, n, v2.Bits, v3.Bits)
				}
				b2, _ := m2.Mem().ReadBytes(dataAddr, 256)
				b3, _ := m3.Mem().ReadBytes(dataAddr, 256)
				if !bytes.Equal(b2, b3) {
					t.Fatalf("%s n=%d: data memory diverged", tgt.Name, n)
				}
				rf := bk.RegFile()
				sc := bk.ScratchReg()
				for ri := 0; ri < rf.NumGPR; ri++ {
					r := core.GPR(ri)
					if r == sc {
						continue
					}
					if a, b := m2.CPU().Reg(r), m3.CPU().Reg(r); a != b {
						t.Fatalf("%s n=%d: register %s: %#x vs %#x", tgt.Name, n, rf.Name(r), a, b)
					}
				}
			}
		}
	})
}
