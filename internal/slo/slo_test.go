package slo

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func newTestWatchdog(obj Objectives) (*Watchdog, *telemetry.Health) {
	h := &telemetry.Health{}
	w := New(obj, telemetry.NewRegistry(), h)
	return w, h
}

func hasReason(h *telemetry.Health, reason string) bool {
	for _, r := range h.Degraded() {
		if r == reason {
			return true
		}
	}
	return false
}

func TestLatencyBreachAndClear(t *testing.T) {
	w, h := newTestWatchdog(Objectives{P99NS: uint64(time.Millisecond), MinSamples: 10})
	g := w.Global()
	for i := 0; i < 50; i++ {
		g.Observe(uint64(10*time.Millisecond), false)
	}
	w.Evaluate(5 * time.Second)

	r := w.View().Global
	if !r.BreachedLatency {
		t.Fatalf("expected latency breach, got %+v", r)
	}
	if r.LatencyBreaches != 1 {
		t.Fatalf("latency breaches = %d, want 1", r.LatencyBreaches)
	}
	if r.BudgetBurnMS != 5000 {
		t.Fatalf("budget burn = %dms, want 5000", r.BudgetBurnMS)
	}
	if r.P99NS <= uint64(time.Millisecond) {
		t.Fatalf("p99 = %d, want > objective", r.P99NS)
	}
	if !hasReason(h, "slo:p99:global") {
		t.Fatalf("health degraded = %v, want slo:p99:global", h.Degraded())
	}

	// Rotate the slow observations out of the window; the breach clears.
	for i := 0; i < subWindows; i++ {
		w.rotate()
	}
	w.Evaluate(5 * time.Second)
	r = w.View().Global
	if r.BreachedLatency {
		t.Fatalf("expected breach cleared, got %+v", r)
	}
	if hasReason(h, "slo:p99:global") {
		t.Fatalf("degradation not cleared: %v", h.Degraded())
	}
	if r.BudgetBurnMS != 5000 {
		t.Fatalf("burn should stop accruing when clear, got %dms", r.BudgetBurnMS)
	}
}

func TestErrorRateBreach(t *testing.T) {
	w, h := newTestWatchdog(Objectives{ErrorRate: 0.1, MinSamples: 10})
	g := w.Global()
	for i := 0; i < 40; i++ {
		g.Observe(uint64(time.Microsecond), i%2 == 0) // 50% errors
	}
	w.Evaluate(time.Second)

	r := w.View().Global
	if !r.BreachedError {
		t.Fatalf("expected error-rate breach, got %+v", r)
	}
	if r.ErrorRate != 0.5 {
		t.Fatalf("error rate = %v, want 0.5", r.ErrorRate)
	}
	if r.ErrorBreaches != 1 {
		t.Fatalf("error breaches = %d, want 1", r.ErrorBreaches)
	}
	if !hasReason(h, "slo:error_rate:global") {
		t.Fatalf("health degraded = %v, want slo:error_rate:global", h.Degraded())
	}
	if r.BreachedLatency {
		t.Fatalf("latency should not breach on fast requests: %+v", r)
	}
}

func TestMinSamplesGuard(t *testing.T) {
	w, h := newTestWatchdog(Objectives{P99NS: uint64(time.Millisecond), ErrorRate: 0.1, MinSamples: 100})
	g := w.Global()
	for i := 0; i < 50; i++ {
		g.Observe(uint64(time.Second), true) // slow AND errored, but under MinSamples
	}
	w.Evaluate(time.Second)

	r := w.View().Global
	if r.BreachedLatency || r.BreachedError {
		t.Fatalf("breach below MinSamples: %+v", r)
	}
	if len(h.Degraded()) != 0 {
		t.Fatalf("unexpected degradations: %v", h.Degraded())
	}
}

func TestTenantTrackers(t *testing.T) {
	w, h := newTestWatchdog(Objectives{P99NS: uint64(time.Millisecond), MinSamples: 10})
	noisy := w.Tenant("noisy")
	quiet := w.Tenant("quiet")
	if w.Tenant("noisy") != noisy {
		t.Fatal("Tenant not idempotent")
	}
	for i := 0; i < 30; i++ {
		noisy.Observe(uint64(10*time.Millisecond), false)
		quiet.Observe(uint64(time.Microsecond), false)
	}
	w.Evaluate(time.Second)

	snap := w.View()
	if len(snap.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(snap.Tenants))
	}
	byName := map[string]Report{}
	for _, r := range snap.Tenants {
		byName[r.Name] = r
	}
	if !byName["noisy"].BreachedLatency {
		t.Fatalf("noisy tenant should breach: %+v", byName["noisy"])
	}
	if byName["quiet"].BreachedLatency {
		t.Fatalf("quiet tenant should not breach: %+v", byName["quiet"])
	}
	if !hasReason(h, "slo:p99:noisy") || hasReason(h, "slo:p99:quiet") {
		t.Fatalf("degraded = %v", h.Degraded())
	}
	found := false
	for _, d := range snap.Degraded {
		if d == "slo:p99:noisy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot degraded = %v, want slo:p99:noisy", snap.Degraded)
	}
}

func TestNilTrackerObserve(t *testing.T) {
	var tr *Tracker
	tr.Observe(123, true) // must not panic
}

func TestStartStop(t *testing.T) {
	w, _ := newTestWatchdog(Objectives{Window: 60 * time.Millisecond})
	w.Start()
	w.Global().Observe(uint64(time.Microsecond), false)
	time.Sleep(30 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent

	// A never-started watchdog stops cleanly too.
	w2, _ := newTestWatchdog(Objectives{})
	w2.Stop()
}
