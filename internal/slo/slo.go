// Package slo is the service-level-objective watchdog for the vcoded
// server: windowed p99 latency and server-fault error rate, per tenant
// and globally, compared against configurable objectives on an
// evaluation tick.  A breach increments error-budget burn counters,
// exports through telemetry ("slo.global.*" / "slo.tenant.<name>.*"),
// and surfaces as a typed degradation reason on /readyz via
// telemetry.Health — degradation is an annotation, not unreadiness, so
// load balancers keep routing while operators see the burn.
//
// The observation path is lock-free: each tracker keeps a ring of
// sub-window bucket sets (the same bounds as telemetry.DefTimeBounds)
// updated with atomic adds, and the evaluator rotates the ring so the
// window slides without ever resetting a histogram mid-read.
package slo

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Objectives configures the watchdog.  Zero fields take the defaults.
type Objectives struct {
	// P99NS is the windowed p99 latency objective in nanoseconds
	// (default 250ms).
	P99NS uint64
	// ErrorRate is the windowed server-fault error-rate objective in
	// [0,1) (default 0.5 — vcoded's typed 4xx rejections are the
	// caller's budget, not the service's, so only 5xx-class failures
	// count).
	ErrorRate float64
	// Window is the sliding evaluation window (default 30s).
	Window time.Duration
	// MinSamples is the observation count below which a window never
	// breaches — tiny samples make p99 meaningless (default 20).
	MinSamples uint64
}

func (o Objectives) withDefaults() Objectives {
	if o.P99NS == 0 {
		o.P99NS = uint64(250 * time.Millisecond)
	}
	if o.ErrorRate == 0 {
		o.ErrorRate = 0.5
	}
	if o.Window <= 0 {
		o.Window = 30 * time.Second
	}
	if o.MinSamples == 0 {
		o.MinSamples = 20
	}
	return o
}

// subWindows is the ring granularity: the window slides in
// Window/subWindows steps.
const subWindows = 6

// subWin is one rotation slot: latency buckets plus scalar tallies, all
// atomics so Observe never takes a lock.
type subWin struct {
	buckets []atomic.Uint64 // len(bounds)+1, last is overflow
	count   atomic.Uint64
	errs    atomic.Uint64
	sum     atomic.Uint64
}

func (w *subWin) reset() {
	for i := range w.buckets {
		w.buckets[i].Store(0)
	}
	w.count.Store(0)
	w.errs.Store(0)
	w.sum.Store(0)
}

// Tracker accumulates one scope's observations (global or one tenant).
// Observe is nil-receiver-safe so callers thread handles unconditionally.
type Tracker struct {
	name string
	wd   *Watchdog
	wins [subWindows]*subWin

	latencyBreaches atomic.Uint64
	errorBreaches   atomic.Uint64
	burnMS          atomic.Uint64 // error-budget burn: ms spent in breach
	breachedLat     atomic.Bool
	breachedErr     atomic.Bool
	lastP99         atomic.Uint64
	lastErrRate     atomic.Uint64 // float64 bits
}

// Observe records one finished request: its wall latency and whether it
// was a server fault (5xx-class).
func (t *Tracker) Observe(durNS uint64, isErr bool) {
	if t == nil {
		return
	}
	w := t.wins[t.wd.cur.Load()]
	w.buckets[t.wd.bucketOf(durNS)].Add(1)
	w.count.Add(1)
	w.sum.Add(durNS)
	if isErr {
		w.errs.Add(1)
	}
}

// window sums the ring into (count, errs, p99) over the full window.
func (t *Tracker) window() (count, errs, p99 uint64) {
	nb := len(t.wd.bounds) + 1
	totals := make([]uint64, nb)
	for _, w := range t.wins {
		for i := 0; i < nb; i++ {
			totals[i] += w.buckets[i].Load()
		}
		count += w.count.Load()
		errs += w.errs.Load()
	}
	if count == 0 {
		return 0, 0, 0
	}
	rank := uint64(math.Ceil(0.99 * float64(count)))
	var cum uint64
	for i, n := range totals {
		cum += n
		if cum >= rank {
			if i < len(t.wd.bounds) {
				return count, errs, t.wd.bounds[i]
			}
			break
		}
	}
	// Overflow bucket: report just past the largest bound.
	return count, errs, t.wd.bounds[len(t.wd.bounds)-1] + 1
}

// Report is one tracker's evaluated state.
type Report struct {
	Name            string  `json:"name"`
	Count           uint64  `json:"count"`
	P99NS           uint64  `json:"p99_ns"`
	ErrorRate       float64 `json:"error_rate"`
	LatencyBreaches uint64  `json:"latency_breaches"`
	ErrorBreaches   uint64  `json:"error_breaches"`
	BudgetBurnMS    uint64  `json:"budget_burn_ms"`
	BreachedLatency bool    `json:"breached_latency"`
	BreachedError   bool    `json:"breached_error_rate"`
}

// Snapshot is the watchdog's full evaluated state.
type Snapshot struct {
	WindowMS           int64    `json:"window_ms"`
	P99ObjectiveNS     uint64   `json:"p99_objective_ns"`
	ErrorRateObjective float64  `json:"error_rate_objective"`
	Global             Report   `json:"global"`
	Tenants            []Report `json:"tenants,omitempty"`
	Degraded           []string `json:"degraded,omitempty"`
}

// Watchdog owns the trackers, the rotation/evaluation loop, and the
// telemetry + health surfacing.
type Watchdog struct {
	obj    Objectives
	bounds []uint64
	reg    *telemetry.Registry
	health *telemetry.Health // may be nil

	global *Tracker
	mu     sync.Mutex
	byName map[string]*Tracker

	cur  atomic.Int32 // current ring slot, advanced by the evaluator
	quit chan struct{}
	done chan struct{}
	once sync.Once
	stop sync.Once
}

// New builds a watchdog.  reg receives the slo.* instruments; health
// (optional) receives typed degradation reasons on breach.
func New(obj Objectives, reg *telemetry.Registry, health *telemetry.Health) *Watchdog {
	if reg == nil {
		reg = telemetry.Default
	}
	w := &Watchdog{
		obj:    obj.withDefaults(),
		bounds: telemetry.DefTimeBounds,
		reg:    reg,
		health: health,
		byName: make(map[string]*Tracker),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	w.global = w.newTracker("global", "slo.global.")
	return w
}

// Objectives reports the effective (defaulted) objectives.
func (w *Watchdog) Objectives() Objectives { return w.obj }

func (w *Watchdog) bucketOf(v uint64) int {
	return sort.Search(len(w.bounds), func(i int) bool { return v <= w.bounds[i] })
}

func (w *Watchdog) newTracker(name, prefix string) *Tracker {
	t := &Tracker{name: name, wd: w}
	for i := range t.wins {
		t.wins[i] = &subWin{buckets: make([]atomic.Uint64, len(w.bounds)+1)}
	}
	w.reg.GaugeFunc(prefix+"p99_ns", func() float64 { return float64(t.lastP99.Load()) })
	w.reg.GaugeFunc(prefix+"error_rate", func() float64 {
		return math.Float64frombits(t.lastErrRate.Load())
	})
	w.reg.GaugeFunc(prefix+"latency_breaches", func() float64 { return float64(t.latencyBreaches.Load()) })
	w.reg.GaugeFunc(prefix+"error_breaches", func() float64 { return float64(t.errorBreaches.Load()) })
	w.reg.GaugeFunc(prefix+"budget_burn_ms", func() float64 { return float64(t.burnMS.Load()) })
	return t
}

// Global returns the service-wide tracker.
func (w *Watchdog) Global() *Tracker { return w.global }

// Tenant returns (creating if needed) the tracker for one tenant,
// registered under "slo.tenant.<name>.*".
func (w *Watchdog) Tenant(name string) *Tracker {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t, ok := w.byName[name]; ok {
		return t
	}
	t := w.newTracker(name, "slo.tenant."+name+".")
	w.byName[name] = t
	return t
}

// Start launches the rotate-and-evaluate loop (one tick per
// Window/subWindows).  Safe to call once; Stop shuts it down.
func (w *Watchdog) Start() {
	w.once.Do(func() {
		tick := w.obj.Window / subWindows
		go func() {
			defer close(w.done)
			tk := time.NewTicker(tick)
			defer tk.Stop()
			for {
				select {
				case <-tk.C:
					w.rotate()
					w.Evaluate(tick)
				case <-w.quit:
					return
				}
			}
		}()
	})
}

// Stop halts the evaluator (idempotent; a never-started watchdog stops
// cleanly too).
func (w *Watchdog) Stop() {
	w.stop.Do(func() { close(w.quit) })
	select {
	case <-w.done:
	default:
		w.once.Do(func() { close(w.done) }) // never started
		<-w.done
	}
}

// rotate advances the ring: the slot about to become current is cleared
// first, so it only ever carries observations from the newest sub-window.
func (w *Watchdog) rotate() {
	next := (w.cur.Load() + 1) % subWindows
	w.trackers(func(t *Tracker) { t.wins[next].reset() })
	w.cur.Store(next)
}

func (w *Watchdog) trackers(fn func(*Tracker)) {
	fn(w.global)
	w.mu.Lock()
	ts := make([]*Tracker, 0, len(w.byName))
	for _, t := range w.byName {
		ts = append(ts, t)
	}
	w.mu.Unlock()
	for _, t := range ts {
		fn(t)
	}
}

// Evaluate compares every tracker's window against the objectives,
// advances the burn counters by elapsed (the time since the previous
// evaluation), and updates health degradation.  Exported so tests and
// snapshot paths can evaluate deterministically.
func (w *Watchdog) Evaluate(elapsed time.Duration) {
	w.trackers(func(t *Tracker) { w.evaluate(t, elapsed) })
}

func (w *Watchdog) evaluate(t *Tracker, elapsed time.Duration) {
	count, errs, p99 := t.window()
	errRate := 0.0
	if count > 0 {
		errRate = float64(errs) / float64(count)
	}
	t.lastP99.Store(p99)
	t.lastErrRate.Store(math.Float64bits(errRate))
	latBreach := count >= w.obj.MinSamples && p99 > w.obj.P99NS
	errBreach := count >= w.obj.MinSamples && errRate > w.obj.ErrorRate
	if latBreach {
		t.latencyBreaches.Add(1)
	}
	if errBreach {
		t.errorBreaches.Add(1)
	}
	if latBreach || errBreach {
		t.burnMS.Add(uint64(elapsed.Milliseconds()))
	}
	w.setDegraded(t, &t.breachedLat, latBreach, "slo:p99:"+t.name)
	w.setDegraded(t, &t.breachedErr, errBreach, "slo:error_rate:"+t.name)
}

func (w *Watchdog) setDegraded(t *Tracker, state *atomic.Bool, breached bool, reason string) {
	if state.Swap(breached) == breached || w.health == nil {
		return
	}
	if breached {
		w.health.Degrade(reason)
	} else {
		w.health.ClearDegraded(reason)
	}
}

// View evaluates nothing but reads every tracker's current window — the
// snapshot path for /v1/stats, cgbench records and bundles, valid even
// before the first tick.
func (w *Watchdog) View() Snapshot {
	snap := Snapshot{
		WindowMS:           w.obj.Window.Milliseconds(),
		P99ObjectiveNS:     w.obj.P99NS,
		ErrorRateObjective: w.obj.ErrorRate,
		Global:             w.report(w.global),
	}
	w.mu.Lock()
	names := make([]string, 0, len(w.byName))
	for name := range w.byName {
		names = append(names, name)
	}
	w.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		snap.Tenants = append(snap.Tenants, w.report(w.Tenant(name)))
	}
	collect := func(t *Tracker, r Report) {
		if r.BreachedLatency {
			snap.Degraded = append(snap.Degraded, "slo:p99:"+t.name)
		}
		if r.BreachedError {
			snap.Degraded = append(snap.Degraded, "slo:error_rate:"+t.name)
		}
	}
	collect(w.global, snap.Global)
	for i, name := range names {
		collect(w.Tenant(name), snap.Tenants[i])
	}
	return snap
}

func (w *Watchdog) report(t *Tracker) Report {
	count, errs, p99 := t.window()
	errRate := 0.0
	if count > 0 {
		errRate = float64(errs) / float64(count)
	}
	return Report{
		Name:            t.name,
		Count:           count,
		P99NS:           p99,
		ErrorRate:       errRate,
		LatencyBreaches: t.latencyBreaches.Load(),
		ErrorBreaches:   t.errorBreaches.Load(),
		BudgetBurnMS:    t.burnMS.Load(),
		BreachedLatency: t.breachedLat.Load(),
		BreachedError:   t.breachedErr.Load(),
	}
}
