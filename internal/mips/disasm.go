package mips

import (
	"fmt"

	"repro/internal/core"
)

// Disasm decodes one instruction word at byte address pc into DEC-style
// assembly, for debugging generated code and for the quickstart example's
// listing output.
func (m *Backend) Disasm(w uint32, pc uint64) string {
	if w == encNop {
		return "nop"
	}
	op := w >> 26
	rs := w >> 21 & 31
	rt := w >> 16 & 31
	rd := w >> 11 & 31
	sh := w >> 6 & 31
	fn := w & 63
	imm := int32(int16(w & 0xffff))
	g := func(n uint32) string { return gprNames[n] }
	f := func(n uint32) string { return fmt.Sprintf("$f%d", n) }
	br := func() string { return fmt.Sprintf("%#x", pc+4+uint64(int64(imm)<<2)) }

	switch op {
	case opSpecial:
		switch fn {
		case fnSll:
			return fmt.Sprintf("sll %s, %s, %d", g(rd), g(rt), sh)
		case fnSrl:
			return fmt.Sprintf("srl %s, %s, %d", g(rd), g(rt), sh)
		case fnSra:
			return fmt.Sprintf("sra %s, %s, %d", g(rd), g(rt), sh)
		case fnSllv:
			return fmt.Sprintf("sllv %s, %s, %s", g(rd), g(rt), g(rs))
		case fnSrlv:
			return fmt.Sprintf("srlv %s, %s, %s", g(rd), g(rt), g(rs))
		case fnSrav:
			return fmt.Sprintf("srav %s, %s, %s", g(rd), g(rt), g(rs))
		case fnJr:
			return fmt.Sprintf("jr %s", g(rs))
		case fnJalr:
			return fmt.Sprintf("jalr %s, %s", g(rd), g(rs))
		case fnMfhi:
			return fmt.Sprintf("mfhi %s", g(rd))
		case fnMflo:
			return fmt.Sprintf("mflo %s", g(rd))
		case fnMult:
			return fmt.Sprintf("mult %s, %s", g(rs), g(rt))
		case fnMultu:
			return fmt.Sprintf("multu %s, %s", g(rs), g(rt))
		case fnDiv:
			return fmt.Sprintf("div %s, %s", g(rs), g(rt))
		case fnDivu:
			return fmt.Sprintf("divu %s, %s", g(rs), g(rt))
		case fnAddu:
			if rt == 0 {
				return fmt.Sprintf("move %s, %s", g(rd), g(rs))
			}
			return fmt.Sprintf("addu %s, %s, %s", g(rd), g(rs), g(rt))
		case fnSubu:
			return fmt.Sprintf("subu %s, %s, %s", g(rd), g(rs), g(rt))
		case fnAnd:
			return fmt.Sprintf("and %s, %s, %s", g(rd), g(rs), g(rt))
		case fnOr:
			return fmt.Sprintf("or %s, %s, %s", g(rd), g(rs), g(rt))
		case fnXor:
			return fmt.Sprintf("xor %s, %s, %s", g(rd), g(rs), g(rt))
		case fnNor:
			return fmt.Sprintf("nor %s, %s, %s", g(rd), g(rs), g(rt))
		case fnSlt:
			return fmt.Sprintf("slt %s, %s, %s", g(rd), g(rs), g(rt))
		case fnSltu:
			return fmt.Sprintf("sltu %s, %s, %s", g(rd), g(rs), g(rt))
		}
	case opRegimm:
		switch rt {
		case rtBltz:
			return fmt.Sprintf("bltz %s, %s", g(rs), br())
		case rtBgez:
			return fmt.Sprintf("bgez %s, %s", g(rs), br())
		case rtBal:
			return fmt.Sprintf("bal %s", br())
		}
	case opJ:
		return fmt.Sprintf("j %#x", (pc+4)&0xf0000000|uint64(w&0x03ffffff)<<2)
	case opJal:
		return fmt.Sprintf("jal %#x", (pc+4)&0xf0000000|uint64(w&0x03ffffff)<<2)
	case opBeq:
		if rs == 0 && rt == 0 {
			return fmt.Sprintf("b %s", br())
		}
		return fmt.Sprintf("beq %s, %s, %s", g(rs), g(rt), br())
	case opBne:
		return fmt.Sprintf("bne %s, %s, %s", g(rs), g(rt), br())
	case opBlez:
		return fmt.Sprintf("blez %s, %s", g(rs), br())
	case opBgtz:
		return fmt.Sprintf("bgtz %s, %s", g(rs), br())
	case opAddiu:
		if rs == 0 {
			return fmt.Sprintf("li %s, %d", g(rt), imm)
		}
		return fmt.Sprintf("addiu %s, %s, %d", g(rt), g(rs), imm)
	case opSlti:
		return fmt.Sprintf("slti %s, %s, %d", g(rt), g(rs), imm)
	case opSltiu:
		return fmt.Sprintf("sltiu %s, %s, %d", g(rt), g(rs), imm)
	case opAndi:
		return fmt.Sprintf("andi %s, %s, %#x", g(rt), g(rs), w&0xffff)
	case opOri:
		return fmt.Sprintf("ori %s, %s, %#x", g(rt), g(rs), w&0xffff)
	case opXori:
		return fmt.Sprintf("xori %s, %s, %#x", g(rt), g(rs), w&0xffff)
	case opLui:
		return fmt.Sprintf("lui %s, %#x", g(rt), w&0xffff)
	case opLb, opLbu, opLh, opLhu, opLw, opSb, opSh, opSw:
		name := map[uint32]string{opLb: "lb", opLbu: "lbu", opLh: "lh", opLhu: "lhu",
			opLw: "lw", opSb: "sb", opSh: "sh", opSw: "sw"}[op]
		return fmt.Sprintf("%s %s, %d(%s)", name, g(rt), imm, g(rs))
	case opLwc1, opLdc1, opSwc1, opSdc1:
		name := map[uint32]string{opLwc1: "lwc1", opLdc1: "ldc1", opSwc1: "swc1", opSdc1: "sdc1"}[op]
		return fmt.Sprintf("%s %s, %d(%s)", name, f(rt), imm, g(rs))
	case opCop1:
		switch rs {
		case fmtMFC1:
			return fmt.Sprintf("mfc1 %s, %s", g(rt), f(rd))
		case fmtMTC1:
			return fmt.Sprintf("mtc1 %s, %s", g(rt), f(rd))
		case fmtBC:
			if rt&1 == 1 {
				return fmt.Sprintf("bc1t %s", br())
			}
			return fmt.Sprintf("bc1f %s", br())
		case fmtS, fmtD, fmtW:
			suffix := map[uint32]string{fmtS: "s", fmtD: "d", fmtW: "w"}[rs]
			names := map[uint32]string{fpAdd: "add", fpSub: "sub", fpMul: "mul",
				fpDiv: "div", fpSqrt: "sqrt", fpAbs: "abs", fpMov: "mov", fpNeg: "neg",
				fpCvtS: "cvt.s", fpCvtD: "cvt.d", fpCvtW: "cvt.w",
				fpCEq: "c.eq", fpCLt: "c.lt", fpCLe: "c.le"}
			if n, ok := names[fn]; ok {
				switch fn {
				case fpCEq, fpCLt, fpCLe:
					return fmt.Sprintf("%s.%s %s, %s", n, suffix, f(rd), f(rt))
				case fpSqrt, fpAbs, fpMov, fpNeg, fpCvtS, fpCvtD, fpCvtW:
					return fmt.Sprintf("%s.%s %s, %s", n, suffix, f(sh), f(rd))
				default:
					return fmt.Sprintf("%s.%s %s, %s, %s", n, suffix, f(sh), f(rd), f(rt))
				}
			}
		}
	}
	return fmt.Sprintf(".word %#08x", w)
}

// Decodable reports whether w decodes at pc — exactly when Disasm would
// not fall back to ".word" — without building the disassembly string.
// It is the verifier's round-trip fast path (verify.DecodableDecoder);
// TestDecodableMatchesDisasm sweeps it against Disasm so the two cannot
// drift.
func (m *Backend) Decodable(w uint32, pc uint64) bool {
	if w == encNop {
		return true
	}
	op := w >> 26
	rs := w >> 21 & 31
	rt := w >> 16 & 31
	fn := w & 63
	switch op {
	case opSpecial:
		switch fn {
		case fnSll, fnSrl, fnSra, fnSllv, fnSrlv, fnSrav, fnJr, fnJalr,
			fnMfhi, fnMflo, fnMult, fnMultu, fnDiv, fnDivu,
			fnAddu, fnSubu, fnAnd, fnOr, fnXor, fnNor, fnSlt, fnSltu:
			return true
		}
	case opRegimm:
		switch rt {
		case rtBltz, rtBgez, rtBal:
			return true
		}
	case opJ, opJal, opBeq, opBne, opBlez, opBgtz,
		opAddiu, opSlti, opSltiu, opAndi, opOri, opXori, opLui,
		opLb, opLbu, opLh, opLhu, opLw, opSb, opSh, opSw,
		opLwc1, opLdc1, opSwc1, opSdc1:
		return true
	case opCop1:
		switch rs {
		case fmtMFC1, fmtMTC1, fmtBC:
			return true
		case fmtS, fmtD, fmtW:
			switch fn {
			case fpAdd, fpSub, fpMul, fpDiv, fpSqrt, fpAbs, fpMov, fpNeg,
				fpCvtS, fpCvtD, fpCvtW, fpCEq, fpCLt, fpCLe:
				return true
			}
		}
	}
	return false
}

// DisasmFunc renders a generated function, one instruction per line,
// marking the entry point.  The unused head of the reserved prologue
// region (before the entry point) is summarized rather than listed.
func DisasmFunc(b *Backend, f *core.Func) []string {
	out := make([]string, 0, len(f.Words))
	if f.Entry > 0 {
		out = append(out, fmt.Sprintf("   [%d reserved prologue words unused; entry at +%d]", f.Entry, f.Entry))
	}
	for i := f.Entry; i < len(f.Words); i++ {
		w := f.Words[i]
		mark := "  "
		if i == f.Entry {
			mark = "=>"
		}
		out = append(out, fmt.Sprintf("%s %3d: %08x  %s", mark, i, w, b.Disasm(w, uint64(4*i))))
	}
	return out
}
