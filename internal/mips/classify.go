package mips

import "repro/internal/verify"

// Classify decodes the control-flow behaviour of one MIPS word for the
// pre-install verifier.  Branch displacements are delay-slot-relative
// (pc+4), J-format targets are 256MB-region absolute, and jr/jalr are
// register-indirect.
func (m *Backend) Classify(w uint32, pc uint64) verify.Insn {
	op := w >> 26
	rel := func() uint64 { // conditional-branch target: pc+4 + simm16<<2
		return pc + 4 + uint64(int64(int16(w))<<2)
	}
	switch op {
	case opSpecial:
		switch w & 0x3f {
		case fnJr:
			return verify.Insn{Kind: verify.KindJumpReg}
		case fnJalr:
			return verify.Insn{Kind: verify.KindCall}
		}
		return verify.Insn{Kind: verify.KindOther}
	case opRegimm:
		switch w >> 16 & 0x1f {
		case rtBltz, rtBgez:
			return verify.Insn{Kind: verify.KindBranch, Target: rel(), HasTarget: true}
		case rtBal:
			return verify.Insn{Kind: verify.KindCall, Target: rel(), HasTarget: true}
		}
		return verify.Insn{Kind: verify.KindIllegal}
	case opJ, opJal:
		target := (pc+4)&^uint64(0x0fffffff) | uint64(w&0x03ffffff)<<2
		kind := verify.KindBranch
		if op == opJal {
			kind = verify.KindCall
		}
		return verify.Insn{Kind: kind, Target: target, HasTarget: true}
	case opBeq, opBne, opBlez, opBgtz:
		return verify.Insn{Kind: verify.KindBranch, Target: rel(), HasTarget: true}
	case opCop1:
		if w>>21&0x1f == fmtBC {
			return verify.Insn{Kind: verify.KindBranch, Target: rel(), HasTarget: true}
		}
		return verify.Insn{Kind: verify.KindOther}
	}
	return verify.Insn{Kind: verify.KindOther}
}
