// Package mips is the MIPS port of VCODE: binary instruction encoders, the
// core.Backend retarget, a disassembler, and a cycle-counted R3000-class
// simulator that executes the generated code.  The modelled machine is a
// little-endian DECstation-style MIPS (the paper's experimental platform).
package mips

// Instruction word constructors.  Field layout follows the MIPS I/II
// manuals; rs/rt/rd are 5-bit register numbers.

// Major opcodes.
const (
	opSpecial = 0x00
	opRegimm  = 0x01
	opJ       = 0x02
	opJal     = 0x03
	opBeq     = 0x04
	opBne     = 0x05
	opBlez    = 0x06
	opBgtz    = 0x07
	opAddiu   = 0x09
	opSlti    = 0x0a
	opSltiu   = 0x0b
	opAndi    = 0x0c
	opOri     = 0x0d
	opXori    = 0x0e
	opLui     = 0x0f
	opCop1    = 0x11
	opLb      = 0x20
	opLh      = 0x21
	opLw      = 0x23
	opLbu     = 0x24
	opLhu     = 0x25
	opSb      = 0x28
	opSh      = 0x29
	opSw      = 0x2b
	opLwc1    = 0x31
	opLdc1    = 0x35
	opSwc1    = 0x39
	opSdc1    = 0x3d
)

// SPECIAL functs.
const (
	fnSll   = 0x00
	fnSrl   = 0x02
	fnSra   = 0x03
	fnSllv  = 0x04
	fnSrlv  = 0x06
	fnSrav  = 0x07
	fnJr    = 0x08
	fnJalr  = 0x09
	fnMfhi  = 0x10
	fnMflo  = 0x12
	fnMult  = 0x18
	fnMultu = 0x19
	fnDiv   = 0x1a
	fnDivu  = 0x1b
	fnAddu  = 0x21
	fnSubu  = 0x23
	fnAnd   = 0x24
	fnOr    = 0x25
	fnXor   = 0x26
	fnNor   = 0x27
	fnSlt   = 0x2a
	fnSltu  = 0x2b
)

// REGIMM rt fields.
const (
	rtBltz = 0x00
	rtBgez = 0x01
	rtBal  = 0x11 // bgezal with rs=0
)

// COP1 rs (fmt/branch) fields.
const (
	fmtMFC1 = 0x00
	fmtMTC1 = 0x04
	fmtBC   = 0x08
	fmtS    = 0x10
	fmtD    = 0x11
	fmtW    = 0x14
)

// COP1 functs.
const (
	fpAdd  = 0x00
	fpSub  = 0x01
	fpMul  = 0x02
	fpDiv  = 0x03
	fpSqrt = 0x04
	fpAbs  = 0x05
	fpMov  = 0x06
	fpNeg  = 0x07
	fpCvtS = 0x20
	fpCvtD = 0x21
	fpCvtW = 0x24
	fpCEq  = 0x32
	fpCLt  = 0x3c
	fpCLe  = 0x3e
)

func rType(funct, rs, rt, rd, shamt uint32) uint32 {
	return rs<<21 | rt<<16 | rd<<11 | shamt<<6 | funct
}

func iType(op, rs, rt uint32, imm uint16) uint32 {
	return op<<26 | rs<<21 | rt<<16 | uint32(imm)
}

func jType(op uint32, target uint32) uint32 {
	return op<<26 | target&0x03ffffff
}

func fpRType(fmt, ft, fs, fd, funct uint32) uint32 {
	return opCop1<<26 | fmt<<21 | ft<<16 | fs<<11 | fd<<6 | funct
}

// encNop is sll zero, zero, 0: the canonical MIPS nop.
const encNop uint32 = 0
