package mips

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDecodableMatchesDisasm pins the verifier fast path to the
// disassembler: Decodable must return true exactly when Disasm does not
// fall back to ".word".  The sweep covers every opcode/function
// combination with varied register fields plus a large pseudo-random
// sample.
func TestDecodableMatchesDisasm(t *testing.T) {
	b := New()
	const pc = 0x4000
	check := func(w uint32) {
		want := !strings.HasPrefix(b.Disasm(w, pc), ".word")
		if got := b.Decodable(w, pc); got != want {
			t.Fatalf("Decodable(%#08x) = %v, but Disasm(%#08x) = %q", w, got, w, b.Disasm(w, pc))
		}
	}
	for op := uint32(0); op < 64; op++ {
		for fn := uint32(0); fn < 64; fn++ {
			for _, mid := range []uint32{0, 0x03ff0000, 0x0000ffc0, 0x03fffc0} {
				check(op<<26 | mid | fn)
			}
		}
		// COP1 formats: sweep the rs (format) and funct fields.
		for rs := uint32(0); rs < 32; rs++ {
			for fn := uint32(0); fn < 64; fn++ {
				check(op<<26 | rs<<21 | fn)
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<20; i++ {
		check(rng.Uint32())
	}
}
