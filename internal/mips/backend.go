package mips

import (
	"fmt"

	"repro/internal/core"
)

// Register numbers in MIPS conventional naming.
const (
	rZero = 0
	rAT   = 1 // assembler temporary (the VCODE scratch)
	rV0   = 2
	rV1   = 3
	rA0   = 4
	rSP   = 29
	rS8   = 30
	rRA   = 31
)

// Backend is the MIPS port of VCODE.
type Backend struct {
	conv *core.CallConv
	regs *core.RegFile
}

// New returns the MIPS backend.
func New() *Backend {
	return &Backend{conv: newConv(), regs: newRegFile()}
}

func newConv() *core.CallConv {
	g := core.GPR
	f := core.FPR
	return &core.CallConv{
		IntArgs: []core.Reg{g(4), g(5), g(6), g(7)},
		FPArgs:  []core.Reg{f(12), f(14)},
		RetInt:  g(rV0),
		RetFP:   f(0),
		RA:      g(rRA),
		SP:      g(rSP),
		Zero:    g(rZero),
		CallerSaved: []core.Reg{
			g(8), g(9), g(10), g(11), g(12), g(13), g(14), g(15),
			g(24), g(25), g(rV1), g(7), g(6), g(5), g(4),
		},
		CalleeSaved: []core.Reg{
			g(16), g(17), g(18), g(19), g(20), g(21), g(22), g(23), g(rS8),
		},
		CallerSavedFP: []core.Reg{f(4), f(6), f(8), f(10), f(16), f(18), f(14), f(12)},
		CalleeSavedFP: []core.Reg{f(20), f(22), f(24), f(26), f(28)},
		StackAlign:    8,
		SlotBytes:     4,
		HardTemp: []core.Reg{
			g(8), g(9), g(10), g(11), g(12), g(13), g(14), g(15), g(24), g(25),
		},
		HardVar:    []core.Reg{g(16), g(17), g(18), g(19), g(20), g(21), g(22), g(23)},
		HardTempFP: []core.Reg{f(4), f(6), f(8), f(10), f(16), f(18)},
		HardVarFP:  []core.Reg{f(20), f(22), f(24), f(26), f(28)},
	}
}

var gprNames = []string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "s8", "ra",
}

func newRegFile() *core.RegFile {
	fpr := make([]string, 32)
	for i := range fpr {
		fpr[i] = fmt.Sprintf("f%d", i)
	}
	return &core.RegFile{NumGPR: 32, NumFPR: 32, GPRName: gprNames, FPRName: fpr}
}

func (*Backend) Name() string                  { return "mips" }
func (*Backend) PtrBytes() int                 { return 4 }
func (m *Backend) RegFile() *core.RegFile      { return m.regs }
func (m *Backend) DefaultConv() *core.CallConv { return m.conv }
func (*Backend) BranchDelaySlots() int         { return 1 }
func (*Backend) LoadDelay() int                { return 1 }
func (*Backend) BigEndian() bool               { return false }
func (*Backend) ScratchReg() core.Reg          { return core.GPR(rAT) }
func (*Backend) ScratchFPR() core.Reg          { return core.FPR(30) }
func (*Backend) RetAddrOffset() int            { return 0 }

func gn(r core.Reg) uint32 { return uint32(r.Num()) }

func fitsS16(v int64) bool { return v >= -32768 && v <= 32767 }
func fitsU16(v int64) bool { return v >= 0 && v <= 0xffff }

// materialize loads a 32-bit immediate into register r.
func materialize(b *core.Buf, r uint32, imm int64) {
	v := uint32(imm)
	switch {
	case fitsS16(int64(int32(v))):
		b.Emit(iType(opAddiu, rZero, r, uint16(v)))
	case v&0xffff == 0:
		b.Emit(iType(opLui, 0, r, uint16(v>>16)))
	case v>>16 == 0:
		b.Emit(iType(opOri, rZero, r, uint16(v)))
	default:
		b.Emit(iType(opLui, 0, r, uint16(v>>16)))
		b.Emit(iType(opOri, r, r, uint16(v)))
	}
}

func fpFmt(t core.Type) uint32 {
	if t == core.TypeD {
		return fmtD
	}
	return fmtS
}

// ALU implements rd = rs1 op rs2.
func (m *Backend) ALU(b *core.Buf, op core.Op, t core.Type, rd, rs1, rs2 core.Reg) error {
	if t.IsFloat() {
		var fn uint32
		switch op {
		case core.OpAdd:
			fn = fpAdd
		case core.OpSub:
			fn = fpSub
		case core.OpMul:
			fn = fpMul
		case core.OpDiv:
			fn = fpDiv
		default:
			return fmt.Errorf("mips: %s%s unsupported", op, t)
		}
		b.Emit(fpRType(fpFmt(t), gn(rs2), gn(rs1), gn(rd), fn))
		return nil
	}
	d, s1, s2 := gn(rd), gn(rs1), gn(rs2)
	switch op {
	case core.OpAdd:
		b.Emit(rType(fnAddu, s1, s2, d, 0))
	case core.OpSub:
		b.Emit(rType(fnSubu, s1, s2, d, 0))
	case core.OpAnd:
		b.Emit(rType(fnAnd, s1, s2, d, 0))
	case core.OpOr:
		b.Emit(rType(fnOr, s1, s2, d, 0))
	case core.OpXor:
		b.Emit(rType(fnXor, s1, s2, d, 0))
	case core.OpLsh:
		b.Emit(rType(fnSllv, s2, s1, d, 0))
	case core.OpRsh:
		if t.IsSigned() {
			b.Emit(rType(fnSrav, s2, s1, d, 0))
		} else {
			b.Emit(rType(fnSrlv, s2, s1, d, 0))
		}
	case core.OpMul:
		if t.IsSigned() {
			b.Emit(rType(fnMult, s1, s2, 0, 0))
		} else {
			b.Emit(rType(fnMultu, s1, s2, 0, 0))
		}
		b.Emit(rType(fnMflo, 0, 0, d, 0))
	case core.OpDiv, core.OpMod:
		if t.IsSigned() {
			b.Emit(rType(fnDiv, s1, s2, 0, 0))
		} else {
			b.Emit(rType(fnDivu, s1, s2, 0, 0))
		}
		if op == core.OpDiv {
			b.Emit(rType(fnMflo, 0, 0, d, 0))
		} else {
			b.Emit(rType(fnMfhi, 0, 0, d, 0))
		}
	default:
		return fmt.Errorf("mips: ALU op %s unsupported", op)
	}
	return nil
}

// ALUImm implements rd = rs op imm.
func (m *Backend) ALUImm(b *core.Buf, op core.Op, t core.Type, rd, rs core.Reg, imm int64) error {
	d, s := gn(rd), gn(rs)
	switch op {
	case core.OpAdd:
		if fitsS16(imm) {
			b.Emit(iType(opAddiu, s, d, uint16(imm)))
			return nil
		}
	case core.OpSub:
		if fitsS16(-imm) {
			b.Emit(iType(opAddiu, s, d, uint16(-imm)))
			return nil
		}
	case core.OpAnd:
		if fitsU16(imm) {
			b.Emit(iType(opAndi, s, d, uint16(imm)))
			return nil
		}
	case core.OpOr:
		if fitsU16(imm) {
			b.Emit(iType(opOri, s, d, uint16(imm)))
			return nil
		}
	case core.OpXor:
		if fitsU16(imm) {
			b.Emit(iType(opXori, s, d, uint16(imm)))
			return nil
		}
	case core.OpLsh:
		b.Emit(rType(fnSll, 0, s, d, uint32(imm&31)))
		return nil
	case core.OpRsh:
		if t.IsSigned() {
			b.Emit(rType(fnSra, 0, s, d, uint32(imm&31)))
		} else {
			b.Emit(rType(fnSrl, 0, s, d, uint32(imm&31)))
		}
		return nil
	}
	// Fall back: materialize into AT and use the register form.
	materialize(b, rAT, imm)
	return m.ALU(b, op, t, rd, rs, core.GPR(rAT))
}

// Unary implements rd = op rs.
func (m *Backend) Unary(b *core.Buf, op core.Op, t core.Type, rd, rs core.Reg) error {
	if t.IsFloat() {
		var fn uint32
		switch op {
		case core.OpMov:
			fn = fpMov
		case core.OpNeg:
			fn = fpNeg
		default:
			return fmt.Errorf("mips: %s%s unsupported", op, t)
		}
		b.Emit(fpRType(fpFmt(t), 0, gn(rs), gn(rd), fn))
		return nil
	}
	d, s := gn(rd), gn(rs)
	switch op {
	case core.OpMov:
		b.Emit(rType(fnAddu, s, rZero, d, 0))
	case core.OpNeg:
		b.Emit(rType(fnSubu, rZero, s, d, 0))
	case core.OpCom:
		b.Emit(rType(fnNor, s, rZero, d, 0))
	case core.OpNot:
		b.Emit(iType(opSltiu, s, d, 1))
	default:
		return fmt.Errorf("mips: unary op %s unsupported", op)
	}
	return nil
}

// SetImm implements rd = imm.
func (m *Backend) SetImm(b *core.Buf, t core.Type, rd core.Reg, imm int64) error {
	materialize(b, gn(rd), imm)
	return nil
}

// Cvt implements rd = (to)rs.
func (m *Backend) Cvt(b *core.Buf, from, to core.Type, rd, rs core.Reg) error {
	switch {
	case from.IsInteger() && to.IsInteger():
		// All integer types are 32 bits on MIPS: a move suffices.
		b.Emit(rType(fnAddu, gn(rs), rZero, gn(rd), 0))
	case from.IsInteger() && to.IsFloat():
		// mtc1 rs -> rd; cvt rd <- (w)rd.
		b.Emit(fpRType(fmtMTC1, gn(rs), gn(rd), 0, 0))
		fn := uint32(fpCvtS)
		if to == core.TypeD {
			fn = fpCvtD
		}
		b.Emit(fpRType(fmtW, 0, gn(rd), gn(rd), fn))
	case from.IsFloat() && to.IsInteger():
		// cvt.w into the FP scratch, then mfc1 (truncating; the
		// simulator implements cvt.w with round-to-zero, the C
		// semantics VCODE wants).
		b.Emit(fpRType(fpFmt(from), 0, gn(rs), 30, fpCvtW))
		b.Emit(fpRType(fmtMFC1, gn(rd), 30, 0, 0))
	case from == core.TypeF && to == core.TypeD:
		b.Emit(fpRType(fmtS, 0, gn(rs), gn(rd), fpCvtD))
	case from == core.TypeD && to == core.TypeF:
		b.Emit(fpRType(fmtD, 0, gn(rs), gn(rd), fpCvtS))
	default:
		return fmt.Errorf("mips: cv%s2%s unsupported", from.Letter(), to.Letter())
	}
	return nil
}

func memOpcode(t core.Type, store bool) (uint32, error) {
	if store {
		switch t {
		case core.TypeC, core.TypeUC:
			return opSb, nil
		case core.TypeS, core.TypeUS:
			return opSh, nil
		case core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP:
			return opSw, nil
		case core.TypeF:
			return opSwc1, nil
		case core.TypeD:
			return opSdc1, nil
		}
		return 0, fmt.Errorf("mips: st%s unsupported", t)
	}
	switch t {
	case core.TypeC:
		return opLb, nil
	case core.TypeUC:
		return opLbu, nil
	case core.TypeS:
		return opLh, nil
	case core.TypeUS:
		return opLhu, nil
	case core.TypeI, core.TypeU, core.TypeL, core.TypeUL, core.TypeP:
		return opLw, nil
	case core.TypeF:
		return opLwc1, nil
	case core.TypeD:
		return opLdc1, nil
	}
	return 0, fmt.Errorf("mips: ld%s unsupported", t)
}

func (m *Backend) mem(b *core.Buf, t core.Type, r, base core.Reg, off int64, store bool) error {
	op, err := memOpcode(t, store)
	if err != nil {
		return err
	}
	if fitsS16(off) {
		b.Emit(iType(op, gn(base), gn(r), uint16(off)))
		return nil
	}
	// lui at, %hi(off); addu at, at, base; op r, %lo(off)(at)
	hi := (off + 0x8000) >> 16
	lo := off - hi<<16
	b.Emit(iType(opLui, 0, rAT, uint16(hi)))
	b.Emit(rType(fnAddu, rAT, gn(base), rAT, 0))
	b.Emit(iType(op, rAT, gn(r), uint16(lo)))
	return nil
}

// Load implements rd = *(t*)(base+off).
func (m *Backend) Load(b *core.Buf, t core.Type, rd, base core.Reg, off int64) error {
	return m.mem(b, t, rd, base, off, false)
}

// Store implements *(t*)(base+off) = rs.
func (m *Backend) Store(b *core.Buf, t core.Type, rs, base core.Reg, off int64) error {
	return m.mem(b, t, rs, base, off, true)
}

// LoadRR implements rd = *(t*)(base+idx).
func (m *Backend) LoadRR(b *core.Buf, t core.Type, rd, base, idx core.Reg) error {
	b.Emit(rType(fnAddu, gn(base), gn(idx), rAT, 0))
	return m.mem(b, t, rd, core.GPR(rAT), 0, false)
}

// StoreRR implements *(t*)(base+idx) = rs.
func (m *Backend) StoreRR(b *core.Buf, t core.Type, rs, base, idx core.Reg) error {
	b.Emit(rType(fnAddu, gn(base), gn(idx), rAT, 0))
	return m.mem(b, t, rs, core.GPR(rAT), 0, true)
}

// Branch emits a conditional branch (delay-slot nop included) and returns
// the patch site.
func (m *Backend) Branch(b *core.Buf, op core.Op, t core.Type, rs1, rs2 core.Reg) (int, error) {
	if t.IsFloat() {
		return m.fpBranch(b, op, t, rs1, rs2)
	}
	s1, s2 := gn(rs1), gn(rs2)
	slt := func(a, c uint32) {
		fn := uint32(fnSlt)
		if !t.IsSigned() {
			fn = fnSltu
		}
		b.Emit(rType(fn, a, c, rAT, 0))
	}
	var site int
	switch op {
	case core.OpBeq:
		site = b.Len()
		b.Emit(iType(opBeq, s1, s2, 0))
	case core.OpBne:
		site = b.Len()
		b.Emit(iType(opBne, s1, s2, 0))
	case core.OpBlt:
		slt(s1, s2)
		site = b.Len()
		b.Emit(iType(opBne, rAT, rZero, 0))
	case core.OpBge:
		slt(s1, s2)
		site = b.Len()
		b.Emit(iType(opBeq, rAT, rZero, 0))
	case core.OpBgt:
		slt(s2, s1)
		site = b.Len()
		b.Emit(iType(opBne, rAT, rZero, 0))
	case core.OpBle:
		slt(s2, s1)
		site = b.Len()
		b.Emit(iType(opBeq, rAT, rZero, 0))
	default:
		return 0, fmt.Errorf("mips: branch op %s", op)
	}
	b.Emit(encNop)
	return site, nil
}

func (m *Backend) fpBranch(b *core.Buf, op core.Op, t core.Type, rs1, rs2 core.Reg) (int, error) {
	fm := fpFmt(t)
	cmp := func(fn, fs, ft uint32) { b.Emit(fpRType(fm, ft, fs, 0, fn)) }
	onTrue := true
	switch op {
	case core.OpBlt:
		cmp(fpCLt, gn(rs1), gn(rs2))
	case core.OpBle:
		cmp(fpCLe, gn(rs1), gn(rs2))
	case core.OpBgt:
		cmp(fpCLt, gn(rs2), gn(rs1))
	case core.OpBge:
		cmp(fpCLe, gn(rs2), gn(rs1))
	case core.OpBeq:
		cmp(fpCEq, gn(rs1), gn(rs2))
	case core.OpBne:
		cmp(fpCEq, gn(rs1), gn(rs2))
		onTrue = false
	default:
		return 0, fmt.Errorf("mips: fp branch op %s", op)
	}
	site := b.Len()
	tf := uint32(1)
	if !onTrue {
		tf = 0
	}
	b.Emit(opCop1<<26 | fmtBC<<21 | tf<<16)
	b.Emit(encNop)
	return site, nil
}

// BranchImm emits a conditional branch against an immediate.
func (m *Backend) BranchImm(b *core.Buf, op core.Op, t core.Type, rs core.Reg, imm int64) (int, error) {
	s := gn(rs)
	var site int
	switch {
	case (op == core.OpBeq || op == core.OpBne) && imm == 0:
		mop := uint32(opBeq)
		if op == core.OpBne {
			mop = opBne
		}
		site = b.Len()
		b.Emit(iType(mop, s, rZero, 0))
	case op == core.OpBlt && fitsS16(imm) && t.IsSigned():
		b.Emit(iType(opSlti, s, rAT, uint16(imm)))
		site = b.Len()
		b.Emit(iType(opBne, rAT, rZero, 0))
	case op == core.OpBge && fitsS16(imm) && t.IsSigned():
		b.Emit(iType(opSlti, s, rAT, uint16(imm)))
		site = b.Len()
		b.Emit(iType(opBeq, rAT, rZero, 0))
	case op == core.OpBle && t.IsSigned() && fitsS16(imm+1):
		b.Emit(iType(opSlti, s, rAT, uint16(imm+1)))
		site = b.Len()
		b.Emit(iType(opBne, rAT, rZero, 0))
	case op == core.OpBgt && t.IsSigned() && fitsS16(imm+1):
		b.Emit(iType(opSlti, s, rAT, uint16(imm+1)))
		site = b.Len()
		b.Emit(iType(opBeq, rAT, rZero, 0))
	case op == core.OpBlt && !t.IsSigned() && imm >= 0 && imm <= 32767:
		b.Emit(iType(opSltiu, s, rAT, uint16(imm)))
		site = b.Len()
		b.Emit(iType(opBne, rAT, rZero, 0))
	case op == core.OpBge && !t.IsSigned() && imm >= 0 && imm <= 32767:
		b.Emit(iType(opSltiu, s, rAT, uint16(imm)))
		site = b.Len()
		b.Emit(iType(opBeq, rAT, rZero, 0))
	default:
		// Materialize and compare registers; AT may serve as both the
		// comparison source and the slt destination.
		materialize(b, rAT, imm)
		return m.Branch(b, op, t, rs, core.GPR(rAT))
	}
	b.Emit(encNop)
	return site, nil
}

// Jump emits an unconditional intra-function jump (patched later).
func (m *Backend) Jump(b *core.Buf) (int, error) {
	site := b.Len()
	b.Emit(iType(opBeq, rZero, rZero, 0))
	b.Emit(encNop)
	return site, nil
}

// JumpReg emits jr r.
func (m *Backend) JumpReg(b *core.Buf, r core.Reg) error {
	b.Emit(rType(fnJr, gn(r), 0, 0, 0))
	b.Emit(encNop)
	return nil
}

// CallSite emits jal with a placeholder target.
func (m *Backend) CallSite(b *core.Buf) ([]int, error) {
	site := b.Len()
	b.Emit(jType(opJal, 0))
	b.Emit(encNop)
	return []int{site}, nil
}

// CallLabel emits bal (branch-and-link) for intra-function calls.
func (m *Backend) CallLabel(b *core.Buf) (int, error) {
	site := b.Len()
	b.Emit(iType(opRegimm, rZero, rtBal, 0))
	b.Emit(encNop)
	return site, nil
}

// CallReg emits jalr r.
func (m *Backend) CallReg(b *core.Buf, r core.Reg) error {
	b.Emit(rType(fnJalr, gn(r), 0, rRA, 0))
	b.Emit(encNop)
	return nil
}

// PatchBranch resolves a relative branch site to a target word index.
func (m *Backend) PatchBranch(b *core.Buf, site, target int) error {
	disp := int64(target - (site + 1))
	if !fitsS16(disp) {
		return fmt.Errorf("%w: %d words", core.ErrBranchRange, disp)
	}
	b.Set(site, b.At(site)&^0xffff|uint32(uint16(disp)))
	return nil
}

// PatchCall resolves jal sites to an absolute target address.
func (m *Backend) PatchCall(b *core.Buf, sites []int, base, target uint64) error {
	for _, site := range sites {
		pc := base + 4*uint64(site) + 4 // address of the delay slot
		if pc&0xf0000000 != target&0xf0000000 {
			return fmt.Errorf("mips: jal target %#x outside 256MB segment of %#x", target, pc)
		}
		b.Set(site, jType(opJal, uint32(target>>2)))
	}
	return nil
}

// LoadAddr emits lui/ori materializing an address to be patched.
func (m *Backend) LoadAddr(b *core.Buf, rd core.Reg) ([]int, error) {
	s0 := b.Len()
	b.Emit(iType(opLui, 0, gn(rd), 0))
	b.Emit(iType(opOri, gn(rd), gn(rd), 0))
	return []int{s0, s0 + 1}, nil
}

// PatchAddr resolves a LoadAddr pair.
func (m *Backend) PatchAddr(b *core.Buf, sites []int, addr uint64) error {
	if len(sites) != 2 {
		return fmt.Errorf("mips: PatchAddr wants 2 sites, got %d", len(sites))
	}
	b.Set(sites[0], b.At(sites[0])&^0xffff|uint32(addr>>16&0xffff))
	b.Set(sites[1], b.At(sites[1])&^0xffff|uint32(addr&0xffff))
	return nil
}

// PatchMemOffset rewrites a load/store displacement.
func (m *Backend) PatchMemOffset(b *core.Buf, site int, off int64) error {
	if !fitsS16(off) {
		return fmt.Errorf("mips: patched offset %d out of range", off)
	}
	b.Set(site, b.At(site)&^0xffff|uint32(uint16(off)))
	return nil
}

// Nop emits the canonical nop.
func (m *Backend) Nop(b *core.Buf) { b.Emit(encNop) }

// IsNop reports whether w is the canonical nop.
func (m *Backend) IsNop(w uint32) bool { return w == encNop }

// RetEncoding returns jr ra.
func (m *Backend) RetEncoding(conv *core.CallConv) uint32 {
	return rType(fnJr, rRA, 0, 0, 0)
}

// MaxPrologueWords: frame push + RA + every callee-saved register.
func (m *Backend) MaxPrologueWords(conv *core.CallConv) int {
	return 2 + len(conv.CalleeSaved) + len(conv.CalleeSavedFP)
}

// Prologue writes the actual prologue into the tail of the reserved region
// [at, at+MaxPrologueWords) and returns the words used.
func (m *Backend) Prologue(b *core.Buf, at int, conv *core.CallConv, fr *core.Frame) (int, error) {
	if !fitsS16(fr.Size) {
		return 0, fmt.Errorf("mips: frame size %d out of range", fr.Size)
	}
	lay := core.NewSaveLayout(conv, 4)
	var w []uint32
	w = append(w, iType(opAddiu, rSP, rSP, uint16(-fr.Size)))
	if fr.SaveRA {
		w = append(w, iType(opSw, rSP, rRA, uint16(lay.RAOff())))
	}
	for _, r := range fr.SavedGPR {
		off := lay.GPROff(r)
		if off < 0 {
			return 0, fmt.Errorf("mips: %v saved but not callee-saved in convention", r)
		}
		w = append(w, iType(opSw, rSP, gn(r), uint16(off)))
	}
	for _, r := range fr.SavedFPR {
		off := lay.FPROff(r)
		if off < 0 {
			return 0, fmt.Errorf("mips: %v saved but not callee-saved in convention", r)
		}
		w = append(w, iType(opSdc1, rSP, gn(r), uint16(off)))
	}
	max := m.MaxPrologueWords(conv)
	if len(w) > max {
		return 0, fmt.Errorf("mips: prologue overflow (%d > %d words)", len(w), max)
	}
	start := at + max - len(w)
	for i, word := range w {
		b.Set(start+i, word)
	}
	return len(w), nil
}

// Epilogue restores saved registers, pops the frame and returns.
func (m *Backend) Epilogue(b *core.Buf, conv *core.CallConv, fr *core.Frame) error {
	lay := core.NewSaveLayout(conv, 4)
	if fr.SaveRA {
		b.Emit(iType(opLw, rSP, rRA, uint16(lay.RAOff())))
	}
	for _, r := range fr.SavedGPR {
		b.Emit(iType(opLw, rSP, gn(r), uint16(lay.GPROff(r))))
	}
	for _, r := range fr.SavedFPR {
		b.Emit(iType(opLdc1, rSP, gn(r), uint16(lay.FPROff(r))))
	}
	b.Emit(rType(fnJr, rRA, 0, 0, 0))
	// Pop the frame in the return's delay slot.
	b.Emit(iType(opAddiu, rSP, rSP, uint16(fr.Size)))
	return nil
}

// EmulatedOp: MIPS has hardware multiply and divide; nothing is emulated.
func (m *Backend) EmulatedOp(op core.Op, t core.Type) (string, bool) { return "", false }

// TryExt provides hardware implementations for extension instructions.
func (m *Backend) TryExt(b *core.Buf, name string, t core.Type, rd core.Reg, rs []core.Reg) (bool, error) {
	switch name {
	case "sqrt":
		if t.IsFloat() && len(rs) == 1 {
			b.Emit(fpRType(fpFmt(t), 0, gn(rs[0]), gn(rd), fpSqrt))
			return true, nil
		}
	case "abs":
		if t.IsFloat() && len(rs) == 1 {
			b.Emit(fpRType(fpFmt(t), 0, gn(rs[0]), gn(rd), fpAbs))
			return true, nil
		}
	}
	return false, nil
}
