package mips

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func newMachine(t *testing.T) (*Backend, *core.Machine) {
	t.Helper()
	b := New()
	m := mem.New(1<<24, false)
	return b, core.NewMachine(b, NewCPU(m), m)
}

// TestPlus1 reproduces the paper's Figure 1: a dynamically created
// function returning its integer argument plus one.
func TestPlus1(t *testing.T) {
	b, m := newMachine(t)
	a := core.NewAsm(b)
	a.SetName("plus1")
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	a.Addii(args[0], args[0], 1)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	got, err := m.Call(fn, core.I(41))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Int() != 42 {
		t.Fatalf("plus1(41) = %d, want 42", got.Int())
	}
	// The paper's §3.2 shows the expected shape: add, then the return
	// with the result move in its delay slot.
	lst := strings.Join(DisasmFunc(b, fn), "\n")
	for _, want := range []string{"addiu a0, a0, 1", "jr ra", "move v0, a0"} {
		if !strings.Contains(lst, want) {
			t.Errorf("listing missing %q:\n%s", want, lst)
		}
	}
	// Leaf with no frame: no prologue should execute.
	if fn.FrameBytes != 0 {
		t.Errorf("leaf frame = %d bytes, want 0", fn.FrameBytes)
	}
}

// TestFigure2Addu pins the paper's §5.1 "life of one instruction":
// v_addu translates to exactly one machine word, the real MIPS addu
// encoding (opcode 0x21), emitted in place with no intermediate steps.
func TestFigure2Addu(t *testing.T) {
	b := New()
	buf := core.NewBuf(4)
	// addu $t2, $t0, $t1  ->  rs=8 rt=9 rd=10 funct 0x21.
	if err := b.ALU(buf, core.OpAdd, core.TypeU, core.GPR(10), core.GPR(8), core.GPR(9)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1 {
		t.Fatalf("v_addu emitted %d words, want 1", buf.Len())
	}
	want := uint32(8<<21 | 9<<16 | 10<<11 | 0x21)
	if buf.At(0) != want {
		t.Fatalf("encoding %#08x, want %#08x", buf.At(0), want)
	}
	if s := b.Disasm(buf.At(0), 0); s != "addu t2, t0, t1" {
		t.Fatalf("disasm %q", s)
	}
}

// TestLoop exercises labels, backward branches and multiplication:
// iterative factorial.
func TestLoop(t *testing.T) {
	b, m := newMachine(t)
	a := core.NewAsm(b)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	n := args[0]
	acc, err := a.GetReg(core.Temp)
	if err != nil {
		t.Fatalf("GetReg: %v", err)
	}
	top, done := a.NewLabel(), a.NewLabel()
	a.Seti(acc, 1)
	a.Bind(top)
	a.Bleii(n, 1, done)
	a.Muli(acc, acc, n)
	a.Subii(n, n, 1)
	a.Jmp(top)
	a.Bind(done)
	a.Reti(acc)
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	for _, tc := range []struct{ in, want int64 }{{0, 1}, {1, 1}, {5, 120}, {10, 3628800}} {
		got, err := m.Call(fn, core.I(int32(tc.in)))
		if err != nil {
			t.Fatalf("Call(%d): %v", tc.in, err)
		}
		if got.Int() != tc.want {
			t.Errorf("fact(%d) = %d, want %d", tc.in, got.Int(), tc.want)
		}
	}
}

// TestCalls builds two functions where one calls the other, exercising
// non-leaf prologue/epilogue, callee-saved allocation and install-time
// call relocation.
func TestCalls(t *testing.T) {
	b, m := newMachine(t)

	a := core.NewAsm(b)
	a.SetName("double")
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	a.Addi(args[0], args[0], args[0])
	a.Reti(args[0])
	double, err := a.End()
	if err != nil {
		t.Fatalf("End(double): %v", err)
	}

	a2 := core.NewAsm(b)
	a2.SetName("caller")
	args, err = a2.Begin("%i", core.NonLeaf)
	if err != nil {
		t.Fatalf("Begin(caller): %v", err)
	}
	// s := double(x) + x, keeping x in a callee-saved register across
	// the call.
	x, err := a2.GetReg(core.Var)
	if err != nil {
		t.Fatalf("GetReg: %v", err)
	}
	a2.Movi(x, args[0])
	a2.StartCall("%i")
	a2.SetArg(0, x)
	a2.CallFunc(double)
	r, err := a2.GetReg(core.Var)
	if err != nil {
		t.Fatalf("GetReg: %v", err)
	}
	a2.RetVal(core.TypeI, r)
	a2.Addi(r, r, x)
	a2.Reti(r)
	caller, err := a2.End()
	if err != nil {
		t.Fatalf("End(caller): %v", err)
	}

	got, err := m.Call(caller, core.I(7))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Int() != 21 {
		t.Fatalf("caller(7) = %d, want 21", got.Int())
	}
}

// TestDivMod checks hardware division and remainder semantics.
func TestDivMod(t *testing.T) {
	b, m := newMachine(t)
	for _, tc := range []struct {
		op        core.Op
		x, y, out int32
	}{
		{core.OpDiv, 37, 5, 7},
		{core.OpDiv, -37, 5, -7},
		{core.OpMod, 37, 5, 2},
		{core.OpMod, -37, 5, -2},
	} {
		a := core.NewAsm(b)
		args, err := a.Begin("%i%i", core.Leaf)
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		a.ALU(tc.op, core.TypeI, args[0], args[0], args[1])
		a.Reti(args[0])
		fn, err := a.End()
		if err != nil {
			t.Fatalf("End: %v", err)
		}
		got, err := m.Call(fn, core.I(tc.x), core.I(tc.y))
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if got.Int() != int64(tc.out) {
			t.Errorf("%s(%d,%d) = %d, want %d", tc.op, tc.x, tc.y, got.Int(), tc.out)
		}
	}
}

// TestDoubleArith exercises FP arithmetic, FP constants (the pool) and FP
// return values.
func TestDoubleArith(t *testing.T) {
	b, m := newMachine(t)
	a := core.NewAsm(b)
	args, err := a.Begin("%d%d", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	c, err := a.GetFReg(core.Temp)
	if err != nil {
		t.Fatalf("GetFReg: %v", err)
	}
	a.Setd(c, 0.5)
	a.Muld(args[0], args[0], args[1])
	a.Addd(args[0], args[0], c)
	a.Retd(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	got, err := m.Call(fn, core.D(3.25), core.D(4))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Float64() != 13.5 {
		t.Fatalf("f(3.25,4) = %v, want 13.5", got.Float64())
	}
}

// TestStackArgs passes more arguments than there are argument registers.
func TestStackArgs(t *testing.T) {
	b, m := newMachine(t)
	a := core.NewAsm(b)
	args, err := a.Begin("%i%i%i%i%i%i", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	acc := args[0]
	for _, r := range args[1:] {
		a.Addi(acc, acc, r)
	}
	a.Reti(acc)
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	got, err := m.Call(fn, core.I(1), core.I(2), core.I(3), core.I(4), core.I(5), core.I(6))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Int() != 21 {
		t.Fatalf("sum = %d, want 21", got.Int())
	}
}

// TestLocals spills through the activation record.
func TestLocals(t *testing.T) {
	b, m := newMachine(t)
	a := core.NewAsm(b)
	args, err := a.Begin("%i", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	loc := a.Local(core.TypeI)
	a.StLocal(core.TypeI, args[0], loc)
	a.Seti(args[0], 0)
	a.LdLocal(core.TypeI, args[0], loc)
	a.Addii(args[0], args[0], 100)
	a.Reti(args[0])
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	got, err := m.Call(fn, core.I(11))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Int() != 111 {
		t.Fatalf("got %d, want 111", got.Int())
	}
	if fn.FrameBytes == 0 {
		t.Errorf("function with a local has no frame")
	}
}

// TestMemOps stores and loads every memory type through heap memory.
func TestMemOps(t *testing.T) {
	b, m := newMachine(t)
	addr, err := m.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// f(p, x) stores x as a short at p, reloads it sign-extended.
	a := core.NewAsm(b)
	args, err := a.Begin("%p%i", core.Leaf)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	a.Stsi(args[1], args[0], 2)
	a.Ldsi(args[1], args[0], 2)
	a.Reti(args[1])
	fn, err := a.End()
	if err != nil {
		t.Fatalf("End: %v", err)
	}
	got, err := m.Call(fn, core.P(addr), core.I(-5))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Int() != -5 {
		t.Fatalf("short round-trip = %d, want -5", got.Int())
	}
	got, err = m.Call(fn, core.P(addr), core.I(0x18001))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got.Int() != -32767 {
		t.Fatalf("short truncation = %d, want %d", got.Int(), -32767)
	}
}
