package mips

import (
	"fmt"
	"math"

	"repro/internal/exec"
)

// This file is the MIPS port of the predecoded direct-threaded execution
// engine (internal/exec).  Predecode unpacks every word of an installed
// function once — operands extracted, static branch targets resolved to
// body indices, load-use interlock metadata precomputed — and RunBody
// drives a dense function-pointer dispatch table over the resulting
// contiguous []exec.Instr.  Semantics must stay bit-identical to the
// fetch/switch oracle in cpu.go: same registers, memory, cycle charges,
// interlock stalls, sampling/edge probes, delay-slot behaviour, and
// error strings.  internal/exec/diff enforces that differentially.

// Dense opcodes: indices into mipsHandlers.
const (
	mSll uint16 = iota
	mSrl
	mSra
	mSllv
	mSrlv
	mSrav
	mJr
	mJalr
	mMfhi
	mMflo
	mMult
	mMultu
	mDiv
	mDivu
	mAddu
	mSubu
	mAnd
	mOr
	mXor
	mNor
	mSlt
	mSltu
	mBadSpecial
	mBltz
	mBgez
	mBal
	mBadRegimm
	mJ
	mJal
	mBeq
	mBne
	mBlez
	mBgtz
	mAddiu
	mSlti
	mSltiu
	mAndi
	mOri
	mXori
	mLui
	mLb
	mLbu
	mLh
	mLhu
	mLw
	mLwc1
	mLdc1
	mSb
	mSh
	mSw
	mSwc1
	mSdc1
	mMfc1
	mMtc1
	mBc1
	mFAddS
	mFSubS
	mFMulS
	mFDivS
	mFSqrtS
	mFAbsS
	mFMovS
	mFNegS
	mFCvtDS
	mFCvtWS
	mFCEqS
	mFCLtS
	mFCLeS
	mBadFS
	mFAddD
	mFSubD
	mFMulD
	mFDivD
	mFSqrtD
	mFAbsD
	mFMovD
	mFNegD
	mFCvtSD
	mFCvtWD
	mFCEqD
	mFCLtD
	mFCLeD
	mBadFD
	mFCvtSW
	mFCvtDW
	mBadFW
	mBadCop1
	mBadOp
	mNumOps
)

// thandler executes one predecoded instruction.  It returns NoBranch for
// fall-through, an in-body index for a resolved taken transfer, or
// External after depositing the destination in c.extPC.
type thandler func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error)

var mipsHandlers [exec.OpTableSize]thandler

// opMask aliases exec.OpMask for the dispatch hot loop; the next line
// fails to compile if the opcode count ever outgrows the table.
const opMask = exec.OpMask

var _ [exec.OpTableSize - mNumOps]struct{}

// Register helpers over the narrow predecoded operand fields.
func (c *CPU) tru(n uint8) uint32 { return uint32(c.r[n]) }
func (c *CPU) trs(n uint8) int32  { return int32(c.r[n]) }
func (c *CPU) twr(n uint8, v uint32) {
	if n != 0 {
		c.r[n] = uint64(v)
	}
}

// mbr resolves a conditional relative branch: edge probe fires on every
// resolution (taken or not), exactly like the oracle's branchRel.
func (c *CPU) mbr(in *exec.Instr, taken bool) int32 {
	c.edge(in.PC, taken)
	if !taken {
		return exec.NoBranch
	}
	return c.mjump(in)
}

// mjump follows a statically resolved transfer.
func (c *CPU) mjump(in *exec.Instr) int32 {
	if in.Target == exec.External {
		c.extPC = uint64(in.Imm)
		return exec.External
	}
	return in.Target
}

// mindirect classifies a runtime-computed transfer destination.
func (c *CPU) mindirect(b *exec.Body, a uint64) int32 {
	if b.Contains(a) {
		return int32(b.IndexOf(a))
	}
	c.extPC = a
	return exec.External
}

// PendingDelay reports whether a taken branch is waiting on its delay
// slot; the generic fetch/switch engine must run the next instruction.
func (c *CPU) PendingDelay() bool { return c.inDelay }

// Predecode unpacks words (the installed image of one function, starting
// at base) into a threaded body.  It is a pure function of its arguments
// — no CPU state is read or written — so the batch installer may call it
// from worker goroutines.  Malformed words never fail predecode: they
// become handlers that reproduce the oracle's exact error text, so
// unreachable garbage (alignment pads, literal pools) still installs.
func (c *CPU) Predecode(words []uint32, base uint64) *exec.Body {
	code := make([]exec.Instr, len(words))
	n := len(words)
	for i, w := range words {
		in := &code[i]
		pc := base + 4*uint64(i)
		in.PC = pc
		in.SrcA = uint8(w >> 21 & 31)
		in.SrcB = exec.NoReg
		in.LoadReg = exec.NoReg

		op := w >> 26
		rs := uint8(w >> 21 & 31)
		rt := uint8(w >> 16 & 31)
		rd := uint8(w >> 11 & 31)
		sh := uint8(w >> 6 & 31)
		fn := w & 63
		imm := w & 0xffff
		sImm := sx16(imm)

		// The oracle charges the load-use interlock on the raw rt field
		// for these opcodes, before it even validates the word.
		switch op {
		case opSpecial, opBeq, opBne, opSb, opSh, opSw:
			in.SrcB = rt
		}

		resolveRel := func() {
			t := pc + 4 + uint64(int64(sImm)<<2)
			if idx, ok := exec.ResolveTarget(base, n, t); ok {
				in.Target = idx
			} else {
				in.Target = exec.External
				in.Imm = int64(t)
			}
		}

		switch op {
		case opSpecial:
			in.A, in.B, in.C, in.Imm = rs, rt, rd, int64(sh)
			switch fn {
			case fnSll:
				in.Op = mSll
			case fnSrl:
				in.Op = mSrl
			case fnSra:
				in.Op = mSra
			case fnSllv:
				in.Op = mSllv
			case fnSrlv:
				in.Op = mSrlv
			case fnSrav:
				in.Op = mSrav
			case fnJr:
				in.Op = mJr
			case fnJalr:
				in.Op = mJalr
			case fnMfhi:
				in.Op = mMfhi
			case fnMflo:
				in.Op = mMflo
			case fnMult:
				in.Op = mMult
			case fnMultu:
				in.Op = mMultu
			case fnDiv:
				in.Op = mDiv
			case fnDivu:
				in.Op = mDivu
			case fnAddu:
				in.Op = mAddu
			case fnSubu:
				in.Op = mSubu
			case fnAnd:
				in.Op = mAnd
			case fnOr:
				in.Op = mOr
			case fnXor:
				in.Op = mXor
			case fnNor:
				in.Op = mNor
			case fnSlt:
				in.Op = mSlt
			case fnSltu:
				in.Op = mSltu
			default:
				in.Op, in.Imm = mBadSpecial, int64(w)
			}
		case opRegimm:
			in.A = rs
			switch uint32(rt) {
			case rtBltz:
				in.Op = mBltz
				resolveRel()
			case rtBgez:
				in.Op = mBgez
				resolveRel()
			case rtBal:
				in.Op = mBal
				resolveRel()
			default:
				in.Op, in.Imm = mBadRegimm, int64(w)
			}
		case opJ, opJal:
			t := (pc + 4) & 0xf0000000
			t |= uint64(w&0x03ffffff) << 2
			if idx, ok := exec.ResolveTarget(base, n, t); ok {
				in.Target = idx
			} else {
				in.Target = exec.External
				in.Imm = int64(t)
			}
			if op == opJal {
				in.Op = mJal
			} else {
				in.Op = mJ
			}
		case opBeq:
			in.Op, in.A, in.B = mBeq, rs, rt
			resolveRel()
		case opBne:
			in.Op, in.A, in.B = mBne, rs, rt
			resolveRel()
		case opBlez:
			in.Op, in.A = mBlez, rs
			resolveRel()
		case opBgtz:
			in.Op, in.A = mBgtz, rs
			resolveRel()
		case opAddiu:
			in.Op, in.A, in.B, in.Imm = mAddiu, rs, rt, int64(sImm)
		case opSlti:
			in.Op, in.A, in.B, in.Imm = mSlti, rs, rt, int64(sImm)
		case opSltiu:
			in.Op, in.A, in.B, in.Imm = mSltiu, rs, rt, int64(sImm)
		case opAndi:
			in.Op, in.A, in.B, in.Imm = mAndi, rs, rt, int64(imm)
		case opOri:
			in.Op, in.A, in.B, in.Imm = mOri, rs, rt, int64(imm)
		case opXori:
			in.Op, in.A, in.B, in.Imm = mXori, rs, rt, int64(imm)
		case opLui:
			in.Op, in.B, in.Imm = mLui, rt, int64(imm)
		case opLb, opLbu, opLh, opLhu, opLw, opLwc1, opLdc1:
			in.A, in.B, in.Imm = rs, rt, int64(sImm)
			switch op {
			case opLb:
				in.Op = mLb
			case opLbu:
				in.Op = mLbu
			case opLh:
				in.Op = mLh
			case opLhu:
				in.Op = mLhu
			case opLw:
				in.Op = mLw
			case opLwc1:
				in.Op = mLwc1
			case opLdc1:
				in.Op = mLdc1
			}
			if op != opLwc1 && op != opLdc1 {
				in.LoadReg = rt
			}
		case opSb, opSh, opSw, opSwc1, opSdc1:
			in.A, in.B, in.Imm = rs, rt, int64(sImm)
			switch op {
			case opSb:
				in.Op = mSb
			case opSh:
				in.Op = mSh
			case opSw:
				in.Op = mSw
			case opSwc1:
				in.Op = mSwc1
			case opSdc1:
				in.Op = mSdc1
			}
		case opCop1:
			// cop1 operand convention: A = fs (rd field), B = ft (rt
			// field), C = fd (sh field) — matching the oracle's cop1()
			// parameter mapping.
			in.A, in.B, in.C = rd, rt, sh
			switch uint32(rs) {
			case fmtMFC1:
				in.Op = mMfc1
			case fmtMTC1:
				in.Op = mMtc1
			case fmtBC:
				in.Op = mBc1
				resolveRel()
			case fmtS:
				switch fn {
				case fpAdd:
					in.Op = mFAddS
				case fpSub:
					in.Op = mFSubS
				case fpMul:
					in.Op = mFMulS
				case fpDiv:
					in.Op = mFDivS
				case fpSqrt:
					in.Op = mFSqrtS
				case fpAbs:
					in.Op = mFAbsS
				case fpMov:
					in.Op = mFMovS
				case fpNeg:
					in.Op = mFNegS
				case fpCvtD:
					in.Op = mFCvtDS
				case fpCvtW:
					in.Op = mFCvtWS
				case fpCEq:
					in.Op = mFCEqS
				case fpCLt:
					in.Op = mFCLtS
				case fpCLe:
					in.Op = mFCLeS
				default:
					in.Op, in.Imm = mBadFS, int64(w)
				}
			case fmtD:
				switch fn {
				case fpAdd:
					in.Op = mFAddD
				case fpSub:
					in.Op = mFSubD
				case fpMul:
					in.Op = mFMulD
				case fpDiv:
					in.Op = mFDivD
				case fpSqrt:
					in.Op = mFSqrtD
				case fpAbs:
					in.Op = mFAbsD
				case fpMov:
					in.Op = mFMovD
				case fpNeg:
					in.Op = mFNegD
				case fpCvtS:
					in.Op = mFCvtSD
				case fpCvtW:
					in.Op = mFCvtWD
				case fpCEq:
					in.Op = mFCEqD
				case fpCLt:
					in.Op = mFCLtD
				case fpCLe:
					in.Op = mFCLeD
				default:
					in.Op, in.Imm = mBadFD, int64(w)
				}
			case fmtW:
				switch fn {
				case fpCvtS:
					in.Op = mFCvtSW
				case fpCvtD:
					in.Op = mFCvtDW
				default:
					in.Op, in.Imm = mBadFW, int64(w)
				}
			default:
				in.Op, in.Imm = mBadCop1, int64(w)
			}
		default:
			in.Op, in.Imm = mBadOp, int64(w)
		}
	}
	return &exec.Body{Base: base, Code: code}
}

// RunBody executes predecoded instructions starting at body index idx
// until allow instructions have retired, control leaves the body, or an
// instruction faults; it returns the number retired.  Preconditions
// (enforced by core.Machine): allow > 0, no pending delay slot.  On
// return the architectural state — including pc and any delay-slot
// state handed back via inDelay/delayTarget — is exactly what the
// fetch/switch loop would have produced.
func (c *CPU) RunBody(b *exec.Body, idx int, allow uint64) (uint64, error) {
	code := b.Code
	// Retired instructions and base cycles accumulate in locals (n, plus
	// stall for load-use bubbles) and flush into c.insns/c.baseCycles at
	// every exit: two read-modify-writes per instruction are a measurable
	// fraction of threaded dispatch cost.  Handlers that charge extra
	// cycles still add to c.baseCycles directly — addition commutes, so
	// the totals stay oracle-exact.  The sampler branch flushes through
	// the current instruction first (flushed tracks how much of n is
	// already applied) so probes observe the counters the fetch/switch
	// loop would show.
	var n, stall, flushed uint64
	ll := c.lastLoad
	sampling := c.sampleEvery != 0
	for n < allow {
		in := &code[idx]
		// One combined predicate guards both rare per-instruction
		// concerns (PC sampling, a pending load-use interlock), so the
		// common ALU-stream iteration pays a single not-taken branch.
		if sampling || ll > 0 {
			if sampling {
				if c.sampleLeft--; c.sampleLeft == 0 {
					c.sampleLeft = c.sampleEvery
					c.insns += n + 1 - flushed
					c.baseCycles += n + 1 - flushed + stall
					flushed, stall = n+1, 0
					c.sampleFn(in.PC)
				}
			}
			if ll > 0 {
				if in.SrcA == uint8(ll) || in.SrcB == uint8(ll) {
					stall++
				}
			}
		}
		br, err := mipsHandlers[in.Op&opMask](c, b, in)
		n++
		if err != nil {
			c.pc = in.PC
			c.flushBody(n-flushed, stall, ll)
			return n, err
		}
		ll = int(int8(in.LoadReg))
		if br == exec.NoBranch {
			// Fall-through is always idx+1 (predecode sets Instr.Next to
			// exactly that), so skip the field load.
			idx++
			if idx == len(code) {
				c.pc = in.PC + 4
				c.flushBody(n-flushed, stall, ll)
				return n, nil
			}
			continue
		}

		// Taken transfer: the next word is the delay slot and the
		// transfer lands after it.
		var pendAddr uint64
		if br == exec.External {
			pendAddr = c.extPC
		} else {
			pendAddr = b.Base + 4*uint64(br)
		}
		dIdx := idx + 1
		if dIdx == len(code) || n >= allow {
			// Delay slot beyond this body or beyond budget: hand the
			// pending transfer back in architectural form so the
			// generic engine (or the next RunBody) resumes correctly.
			c.pc = in.PC + 4
			c.inDelay = true
			c.delayTarget = pendAddr
			c.flushBody(n-flushed, stall, ll)
			return n, nil
		}
		din := &code[dIdx]
		if sampling || ll > 0 {
			if sampling {
				if c.sampleLeft--; c.sampleLeft == 0 {
					c.sampleLeft = c.sampleEvery
					c.insns += n + 1 - flushed
					c.baseCycles += n + 1 - flushed + stall
					flushed, stall = n+1, 0
					c.sampleFn(din.PC)
				}
			}
			if ll > 0 {
				if din.SrcA == uint8(ll) || din.SrcB == uint8(ll) {
					stall++
				}
			}
		}
		dbr, derr := mipsHandlers[din.Op&opMask](c, b, din)
		n++
		if derr != nil {
			c.pc = din.PC
			c.inDelay = true
			c.delayTarget = pendAddr
			c.flushBody(n-flushed, stall, ll)
			return n, derr
		}
		ll = int(int8(din.LoadReg))
		if dbr != exec.NoBranch {
			// Branch in a delay slot: the oracle resolves the pending
			// transfer first, then reports the bug at the landing pc.
			c.pc = pendAddr
			c.flushBody(n-flushed, stall, ll)
			return n, fmt.Errorf("mips: branch in delay slot at %#x", c.pc)
		}
		if br == exec.External {
			c.pc = pendAddr
			c.flushBody(n-flushed, stall, ll)
			return n, nil
		}
		idx = int(br)
	}
	c.pc = code[idx].PC
	c.flushBody(n-flushed, stall, ll)
	return n, nil
}

// flushBody applies the dispatch loop's locally-accumulated bookkeeping:
// pend retired instructions not yet counted, their base cycles plus
// stall interlock bubbles, and the interlock producer register.
func (c *CPU) flushBody(pend, stall uint64, ll int) {
	c.insns += pend
	c.baseCycles += pend + stall
	c.lastLoad = ll
}

func init() {
	h := mipsHandlers[:]
	nb := exec.NoBranch

	h[mSll] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.B)<<uint32(in.Imm))
		return nb, nil
	}
	h[mSrl] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.B)>>uint32(in.Imm))
		return nb, nil
	}
	h[mSra] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, uint32(c.trs(in.B)>>uint32(in.Imm)))
		return nb, nil
	}
	h[mSllv] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.B)<<(c.tru(in.A)&31))
		return nb, nil
	}
	h[mSrlv] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.B)>>(c.tru(in.A)&31))
		return nb, nil
	}
	h[mSrav] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, uint32(c.trs(in.B)>>(c.tru(in.A)&31)))
		return nb, nil
	}
	h[mJr] = func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error) {
		return c.mindirect(b, uint64(c.tru(in.A))), nil
	}
	h[mJalr] = func(c *CPU, b *exec.Body, in *exec.Instr) (int32, error) {
		// Link before reading rs, as the oracle does (rd == rs uses the
		// freshly written link value).
		c.twr(in.C, uint32(in.PC+8))
		return c.mindirect(b, uint64(c.tru(in.A))), nil
	}
	h[mMfhi] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.hi)
		return nb, nil
	}
	h[mMflo] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.lo)
		return nb, nil
	}
	h[mMult] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		p := int64(c.trs(in.A)) * int64(c.trs(in.B))
		c.lo, c.hi = uint32(p), uint32(p>>32)
		c.baseCycles += 11
		return nb, nil
	}
	h[mMultu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		p := uint64(c.tru(in.A)) * uint64(c.tru(in.B))
		c.lo, c.hi = uint32(p), uint32(p>>32)
		c.baseCycles += 11
		return nb, nil
	}
	h[mDiv] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		d := c.trs(in.B)
		if d == 0 {
			c.lo, c.hi = 0, 0
		} else if c.trs(in.A) == math.MinInt32 && d == -1 {
			c.lo, c.hi = 0x80000000, 0
		} else {
			c.lo, c.hi = uint32(c.trs(in.A)/d), uint32(c.trs(in.A)%d)
		}
		c.baseCycles += 34
		return nb, nil
	}
	h[mDivu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		d := c.tru(in.B)
		if d == 0 {
			c.lo, c.hi = 0, 0
		} else {
			c.lo, c.hi = c.tru(in.A)/d, c.tru(in.A)%d
		}
		c.baseCycles += 34
		return nb, nil
	}
	h[mAddu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.A)+c.tru(in.B))
		return nb, nil
	}
	h[mSubu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.A)-c.tru(in.B))
		return nb, nil
	}
	h[mAnd] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.A)&c.tru(in.B))
		return nb, nil
	}
	h[mOr] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.A)|c.tru(in.B))
		return nb, nil
	}
	h[mXor] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, c.tru(in.A)^c.tru(in.B))
		return nb, nil
	}
	h[mNor] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, ^(c.tru(in.A) | c.tru(in.B)))
		return nb, nil
	}
	h[mSlt] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, b2u(c.trs(in.A) < c.trs(in.B)))
		return nb, nil
	}
	h[mSltu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.C, b2u(c.tru(in.A) < c.tru(in.B)))
		return nb, nil
	}
	h[mBadSpecial] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown SPECIAL funct %#x at %#x", uint32(in.Imm)&63, in.PC)
	}
	h[mBltz] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, c.trs(in.A) < 0), nil
	}
	h[mBgez] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, c.trs(in.A) >= 0), nil
	}
	h[mBal] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		// The oracle writes the link register before evaluating the
		// condition, taken or not.
		c.twr(rRA, uint32(in.PC+8))
		return c.mbr(in, c.trs(in.A) >= 0), nil
	}
	h[mBadRegimm] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown REGIMM rt %#x at %#x", uint32(in.Imm)>>16&31, in.PC)
	}
	h[mJ] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mjump(in), nil
	}
	h[mJal] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(rRA, uint32(in.PC+8))
		return c.mjump(in), nil
	}
	h[mBeq] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, c.tru(in.A) == c.tru(in.B)), nil
	}
	h[mBne] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, c.tru(in.A) != c.tru(in.B)), nil
	}
	h[mBlez] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, c.trs(in.A) <= 0), nil
	}
	h[mBgtz] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, c.trs(in.A) > 0), nil
	}
	h[mAddiu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, c.tru(in.A)+uint32(int32(in.Imm)))
		return nb, nil
	}
	h[mSlti] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, b2u(c.trs(in.A) < int32(in.Imm)))
		return nb, nil
	}
	h[mSltiu] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, b2u(c.tru(in.A) < uint32(int32(in.Imm))))
		return nb, nil
	}
	h[mAndi] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, c.tru(in.A)&uint32(in.Imm))
		return nb, nil
	}
	h[mOri] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, c.tru(in.A)|uint32(in.Imm))
		return nb, nil
	}
	h[mXori] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, c.tru(in.A)^uint32(in.Imm))
		return nb, nil
	}
	h[mLui] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, uint32(in.Imm)<<16)
		return nb, nil
	}
	h[mLb] = mipsLoad(1, func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.B, uint32(int32(int8(v)))) })
	h[mLbu] = mipsLoad(1, func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.B, uint32(uint8(v))) })
	h[mLh] = mipsLoad(2, func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.B, uint32(int32(int16(v)))) })
	h[mLhu] = mipsLoad(2, func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.B, uint32(uint16(v))) })
	h[mLw] = mipsLoad(4, func(c *CPU, in *exec.Instr, v uint64) { c.twr(in.B, uint32(v)) })
	h[mLwc1] = mipsLoad(4, func(c *CPU, in *exec.Instr, v uint64) { c.f[in.B] = uint64(uint32(v)) })
	h[mLdc1] = mipsLoad(8, func(c *CPU, in *exec.Instr, v uint64) { c.f[in.B] = v })
	h[mSb] = mipsStore(1, func(c *CPU, in *exec.Instr) uint64 { return uint64(uint8(c.tru(in.B))) })
	h[mSh] = mipsStore(2, func(c *CPU, in *exec.Instr) uint64 { return uint64(uint16(c.tru(in.B))) })
	h[mSw] = mipsStore(4, func(c *CPU, in *exec.Instr) uint64 { return uint64(c.tru(in.B)) })
	h[mSwc1] = mipsStore(4, func(c *CPU, in *exec.Instr) uint64 { return uint64(uint32(c.f[in.B])) })
	h[mSdc1] = mipsStore(8, func(c *CPU, in *exec.Instr) uint64 { return c.f[in.B] })
	h[mMfc1] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.twr(in.B, uint32(c.f[in.A]))
		return nb, nil
	}
	h[mMtc1] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.A] = uint64(c.tru(in.B))
		return nb, nil
	}
	h[mBc1] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return c.mbr(in, (in.B&1 == 1) == c.cc), nil
	}
	h[mFAddS] = fpS(1, func(a, b float32) float32 { return a + b })
	h[mFSubS] = fpS(1, func(a, b float32) float32 { return a - b })
	h[mFMulS] = fpS(3, func(a, b float32) float32 { return a * b })
	h[mFDivS] = fpS(11, func(a, b float32) float32 { return a / b })
	h[mFSqrtS] = fpS(29, func(a, _ float32) float32 { return float32(math.Sqrt(float64(a))) })
	h[mFAbsS] = fpS(0, func(a, _ float32) float32 { return float32(math.Abs(float64(a))) })
	h[mFMovS] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = c.f[in.A] & 0xffffffff
		return nb, nil
	}
	h[mFNegS] = fpS(0, func(a, _ float32) float32 { return -a })
	h[mFCvtDS] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfd(uint32(in.C), float64(c.fs(uint32(in.A))))
		return nb, nil
	}
	h[mFCvtWS] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = uint64(uint32(truncToI32(float64(c.fs(uint32(in.A))))))
		return nb, nil
	}
	h[mFCEqS] = fcmpS(func(a, b float32) bool { return a == b })
	h[mFCLtS] = fcmpS(func(a, b float32) bool { return a < b })
	h[mFCLeS] = fcmpS(func(a, b float32) bool { return a <= b })
	h[mBadFS] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown fp.s funct %#x at %#x", uint32(in.Imm)&63, in.PC)
	}
	h[mFAddD] = fpD(1, func(a, b float64) float64 { return a + b })
	h[mFSubD] = fpD(1, func(a, b float64) float64 { return a - b })
	h[mFMulD] = fpD(4, func(a, b float64) float64 { return a * b })
	h[mFDivD] = fpD(18, func(a, b float64) float64 { return a / b })
	h[mFSqrtD] = fpD(29, func(a, _ float64) float64 { return math.Sqrt(a) })
	h[mFAbsD] = fpD(0, func(a, _ float64) float64 { return math.Abs(a) })
	h[mFMovD] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = c.f[in.A]
		return nb, nil
	}
	h[mFNegD] = fpD(0, func(a, _ float64) float64 { return -a })
	h[mFCvtSD] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfs(uint32(in.C), float32(c.fd(uint32(in.A))))
		return nb, nil
	}
	h[mFCvtWD] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.f[in.C] = uint64(uint32(truncToI32(c.fd(uint32(in.A)))))
		return nb, nil
	}
	h[mFCEqD] = fcmpD(func(a, b float64) bool { return a == b })
	h[mFCLtD] = fcmpD(func(a, b float64) bool { return a < b })
	h[mFCLeD] = fcmpD(func(a, b float64) bool { return a <= b })
	h[mBadFD] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown fp.d funct %#x at %#x", uint32(in.Imm)&63, in.PC)
	}
	h[mFCvtSW] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfs(uint32(in.C), float32(int32(uint32(c.f[in.A]))))
		return nb, nil
	}
	h[mFCvtDW] = func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfd(uint32(in.C), float64(int32(uint32(c.f[in.A]))))
		return nb, nil
	}
	h[mBadFW] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown fp.w funct %#x at %#x", uint32(in.Imm)&63, in.PC)
	}
	h[mBadCop1] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown COP1 fmt %#x (word %#08x) at %#x", uint32(in.Imm)>>21&31, uint32(in.Imm), in.PC)
	}
	h[mBadOp] = func(_ *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		return 0, fmt.Errorf("mips: unknown opcode %#x (word %#08x) at %#x", uint32(in.Imm)>>26, uint32(in.Imm), in.PC)
	}
}

func mipsLoad(size int, sink func(c *CPU, in *exec.Instr, v uint64)) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		v, err := c.m.Load(uint64(c.tru(in.A)+uint32(int32(in.Imm))), size)
		if err != nil {
			return 0, fmt.Errorf("mips: load at pc %#x: %w", in.PC, err)
		}
		sink(c, in, v)
		return exec.NoBranch, nil
	}
}

func mipsStore(size int, src func(c *CPU, in *exec.Instr) uint64) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		addr := uint64(c.tru(in.A) + uint32(int32(in.Imm)))
		if err := c.m.Store(addr, size, src(c, in)); err != nil {
			return 0, fmt.Errorf("mips: store at pc %#x: %w", in.PC, err)
		}
		return exec.NoBranch, nil
	}
}

func fpS(cycles uint64, f func(a, b float32) float32) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfs(uint32(in.C), f(c.fs(uint32(in.A)), c.fs(uint32(in.B))))
		c.baseCycles += cycles
		return exec.NoBranch, nil
	}
}

func fpD(cycles uint64, f func(a, b float64) float64) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.wfd(uint32(in.C), f(c.fd(uint32(in.A)), c.fd(uint32(in.B))))
		c.baseCycles += cycles
		return exec.NoBranch, nil
	}
}

func fcmpS(f func(a, b float32) bool) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.cc = f(c.fs(uint32(in.A)), c.fs(uint32(in.B)))
		return exec.NoBranch, nil
	}
}

func fcmpD(f func(a, b float64) bool) thandler {
	return func(c *CPU, _ *exec.Body, in *exec.Instr) (int32, error) {
		c.cc = f(c.fd(uint32(in.A)), c.fd(uint32(in.B)))
		return exec.NoBranch, nil
	}
}
