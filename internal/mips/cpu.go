package mips

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mem"
)

// CPU is a cycle-counted R3000-class MIPS simulator.  It executes the
// binary code the backend emits — including branch delay slots — against a
// simulated memory, charging base cycles per instruction, long-latency
// cycles for multiply/divide and floating point, a one-cycle load-use
// stall (modelled as an interlock, as on later MIPS implementations), and
// whatever stall cycles the attached cache model reports.
type CPU struct {
	r  [32]uint64 // zero-extended 32-bit values
	f  [32]uint64 // raw FP bits; singles in the low word
	hi uint32
	lo uint32
	cc bool // FP condition flag

	pc          uint64
	inDelay     bool
	delayTarget uint64

	// extPC holds the destination of a control transfer that leaves the
	// current predecoded body (threaded engine only; see threaded.go).
	extPC uint64

	m *mem.Memory

	baseCycles uint64
	insns      uint64
	lastLoad   int // GPR written by the immediately preceding load, or -1

	// PC-sampling hook (core.SamplingCPU): sampleFn fires with the
	// pre-execution PC every sampleEvery retired instructions.  Disabled
	// (sampleEvery == 0) the cost is one predictable branch per step.
	sampleFn    func(pc uint64)
	sampleEvery uint64
	sampleLeft  uint64

	// Branch edge probe (core.EdgeProfilingCPU): edgeFn fires with
	// (branch PC, taken) every edgeEvery conditional-branch resolutions.
	// Disabled (edgeEvery == 0) the cost is one predictable branch per
	// conditional branch executed.
	edgeFn    func(pc uint64, taken bool)
	edgeEvery uint64
	edgeLeft  uint64
}

// SetSampler installs fn to be called with the pre-execution program
// counter every stride retired instructions; nil fn or zero stride
// disables sampling.
func (c *CPU) SetSampler(fn func(pc uint64), stride uint64) {
	if fn == nil || stride == 0 {
		c.sampleFn, c.sampleEvery, c.sampleLeft = nil, 0, 0
		return
	}
	c.sampleFn, c.sampleEvery, c.sampleLeft = fn, stride, stride
}

// SetEdgeProbe installs fn to be called with (branch PC, taken) every
// stride conditional-branch resolutions; nil fn or zero stride disables
// the probe.
func (c *CPU) SetEdgeProbe(fn func(pc uint64, taken bool), stride uint64) {
	if fn == nil || stride == 0 {
		c.edgeFn, c.edgeEvery, c.edgeLeft = nil, 0, 0
		return
	}
	c.edgeFn, c.edgeEvery, c.edgeLeft = fn, stride, stride
}

// edge is the countdown-gated probe call at conditional-branch
// resolution.
func (c *CPU) edge(pc uint64, taken bool) {
	// Split guard/slow-path so the no-probe case inlines into the branch
	// handlers: with no edge probe attached this is a loaded-field test,
	// not a call, and branch resolution is the threaded engine's hottest
	// non-ALU operation.
	if c.edgeEvery == 0 {
		return
	}
	c.edgeSlow(pc, taken)
}

func (c *CPU) edgeSlow(pc uint64, taken bool) {
	if c.edgeLeft--; c.edgeLeft == 0 {
		c.edgeLeft = c.edgeEvery
		c.edgeFn(pc, taken)
	}
}

// NewCPU returns a simulator bound to m.
func NewCPU(m *mem.Memory) *CPU {
	return &CPU{m: m, lastLoad: -1}
}

// PC returns the current program counter.
func (c *CPU) PC() uint64 { return c.pc }

// SetPC jumps the simulator, clearing any pending delay-slot state.
func (c *CPU) SetPC(pc uint64) {
	c.pc = pc
	c.inDelay = false
}

// Reg reads an integer register.
func (c *CPU) Reg(r core.Reg) uint64 {
	if r.IsFP() {
		return c.f[r.Num()]
	}
	return c.r[r.Num()]
}

// SetReg writes an integer register.
func (c *CPU) SetReg(r core.Reg, v uint64) {
	if r.IsFP() {
		c.f[r.Num()] = v
		return
	}
	if r.Num() != 0 {
		c.r[r.Num()] = uint64(uint32(v))
	}
}

// FReg reads an FP register (single in the low 32 bits, double full).
func (c *CPU) FReg(r core.Reg, double bool) uint64 {
	if double {
		return c.f[r.Num()]
	}
	return c.f[r.Num()] & 0xffffffff
}

// SetFReg writes an FP register.
func (c *CPU) SetFReg(r core.Reg, v uint64, double bool) {
	if double {
		c.f[r.Num()] = v
		return
	}
	c.f[r.Num()] = v & 0xffffffff
}

// Cycles returns executed cycles including memory-system stalls.
func (c *CPU) Cycles() uint64 { return c.baseCycles + c.m.PenaltyCycles() }

// Insns returns retired instructions.
func (c *CPU) Insns() uint64 { return c.insns }

// ResetStats zeroes cycle/instruction counters (and the memory penalty
// accumulator).
func (c *CPU) ResetStats() {
	c.baseCycles, c.insns = 0, 0
	c.m.ResetStats()
}

func (c *CPU) ru(n uint32) uint32  { return uint32(c.r[n]) }
func (c *CPU) rs32(n uint32) int32 { return int32(c.r[n]) }

func (c *CPU) wr(n uint32, v uint32) {
	if n != 0 {
		c.r[n] = uint64(v)
	}
}

func (c *CPU) fs(n uint32) float32     { return math.Float32frombits(uint32(c.f[n])) }
func (c *CPU) fd(n uint32) float64     { return math.Float64frombits(c.f[n]) }
func (c *CPU) wfs(n uint32, v float32) { c.f[n] = uint64(math.Float32bits(v)) }
func (c *CPU) wfd(n uint32, v float64) { c.f[n] = math.Float64bits(v) }

func sx16(imm uint32) int32 { return int32(int16(imm)) }

// truncToI32 implements cvt.w round-to-zero with clamped out-of-range
// behaviour (C truncation semantics for in-range values).
func truncToI32(v float64) int32 {
	switch {
	case v != v:
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	w, err := c.m.FetchWord(c.pc)
	if err != nil {
		return fmt.Errorf("mips: fetch at %#x: %w", c.pc, err)
	}
	c.insns++
	c.baseCycles++
	if c.sampleEvery != 0 {
		if c.sampleLeft--; c.sampleLeft == 0 {
			c.sampleLeft = c.sampleEvery
			c.sampleFn(c.pc)
		}
	}

	op := w >> 26
	rs := w >> 21 & 31
	rt := w >> 16 & 31
	rd := w >> 11 & 31
	sh := w >> 6 & 31
	fn := w & 63
	imm := w & 0xffff
	sImm := sx16(imm)

	// Approximate load-use interlock: stall one cycle when this
	// instruction reads the register loaded by the previous one.
	if c.lastLoad >= 0 {
		ll := uint32(c.lastLoad)
		reads := rs == ll
		switch op {
		case opSpecial, opBeq, opBne, opSb, opSh, opSw:
			reads = reads || rt == ll
		}
		if reads && ll != 0 {
			c.baseCycles++
		}
	}
	loadedReg := -1

	var target uint64
	hasTarget := false
	branchRel := func(taken bool) {
		c.edge(c.pc, taken)
		if taken {
			target = c.pc + 4 + uint64(int64(sImm)<<2)
			hasTarget = true
		}
	}

	switch op {
	case opSpecial:
		switch fn {
		case fnSll:
			c.wr(rd, c.ru(rt)<<sh)
		case fnSrl:
			c.wr(rd, c.ru(rt)>>sh)
		case fnSra:
			c.wr(rd, uint32(c.rs32(rt)>>sh))
		case fnSllv:
			c.wr(rd, c.ru(rt)<<(c.ru(rs)&31))
		case fnSrlv:
			c.wr(rd, c.ru(rt)>>(c.ru(rs)&31))
		case fnSrav:
			c.wr(rd, uint32(c.rs32(rt)>>(c.ru(rs)&31)))
		case fnJr:
			target, hasTarget = uint64(c.ru(rs)), true
		case fnJalr:
			c.wr(rd, uint32(c.pc+8))
			target, hasTarget = uint64(c.ru(rs)), true
		case fnMfhi:
			c.wr(rd, c.hi)
		case fnMflo:
			c.wr(rd, c.lo)
		case fnMult:
			p := int64(c.rs32(rs)) * int64(c.rs32(rt))
			c.lo, c.hi = uint32(p), uint32(p>>32)
			c.baseCycles += 11
		case fnMultu:
			p := uint64(c.ru(rs)) * uint64(c.ru(rt))
			c.lo, c.hi = uint32(p), uint32(p>>32)
			c.baseCycles += 11
		case fnDiv:
			d := c.rs32(rt)
			if d == 0 {
				c.lo, c.hi = 0, 0
			} else if c.rs32(rs) == math.MinInt32 && d == -1 {
				c.lo, c.hi = 0x80000000, 0
			} else {
				c.lo, c.hi = uint32(c.rs32(rs)/d), uint32(c.rs32(rs)%d)
			}
			c.baseCycles += 34
		case fnDivu:
			d := c.ru(rt)
			if d == 0 {
				c.lo, c.hi = 0, 0
			} else {
				c.lo, c.hi = c.ru(rs)/d, c.ru(rs)%d
			}
			c.baseCycles += 34
		case fnAddu:
			c.wr(rd, c.ru(rs)+c.ru(rt))
		case fnSubu:
			c.wr(rd, c.ru(rs)-c.ru(rt))
		case fnAnd:
			c.wr(rd, c.ru(rs)&c.ru(rt))
		case fnOr:
			c.wr(rd, c.ru(rs)|c.ru(rt))
		case fnXor:
			c.wr(rd, c.ru(rs)^c.ru(rt))
		case fnNor:
			c.wr(rd, ^(c.ru(rs) | c.ru(rt)))
		case fnSlt:
			c.wr(rd, b2u(c.rs32(rs) < c.rs32(rt)))
		case fnSltu:
			c.wr(rd, b2u(c.ru(rs) < c.ru(rt)))
		default:
			return fmt.Errorf("mips: unknown SPECIAL funct %#x at %#x", fn, c.pc)
		}
	case opRegimm:
		switch rt {
		case rtBltz:
			branchRel(c.rs32(rs) < 0)
		case rtBgez:
			branchRel(c.rs32(rs) >= 0)
		case rtBal:
			c.wr(rRA, uint32(c.pc+8))
			branchRel(c.rs32(rs) >= 0)
		default:
			return fmt.Errorf("mips: unknown REGIMM rt %#x at %#x", rt, c.pc)
		}
	case opJ, opJal:
		target = (c.pc + 4) & 0xf0000000
		target |= uint64(w&0x03ffffff) << 2
		hasTarget = true
		if op == opJal {
			c.wr(rRA, uint32(c.pc+8))
		}
	case opBeq:
		branchRel(c.ru(rs) == c.ru(rt))
	case opBne:
		branchRel(c.ru(rs) != c.ru(rt))
	case opBlez:
		branchRel(c.rs32(rs) <= 0)
	case opBgtz:
		branchRel(c.rs32(rs) > 0)
	case opAddiu:
		c.wr(rt, c.ru(rs)+uint32(sImm))
	case opSlti:
		c.wr(rt, b2u(c.rs32(rs) < sImm))
	case opSltiu:
		c.wr(rt, b2u(c.ru(rs) < uint32(sImm)))
	case opAndi:
		c.wr(rt, c.ru(rs)&imm)
	case opOri:
		c.wr(rt, c.ru(rs)|imm)
	case opXori:
		c.wr(rt, c.ru(rs)^imm)
	case opLui:
		c.wr(rt, imm<<16)
	case opLb, opLbu, opLh, opLhu, opLw, opLwc1, opLdc1:
		addr := uint64(c.ru(rs) + uint32(sImm))
		size := map[uint32]int{opLb: 1, opLbu: 1, opLh: 2, opLhu: 2, opLw: 4, opLwc1: 4, opLdc1: 8}[op]
		v, err := c.m.Load(addr, size)
		if err != nil {
			return fmt.Errorf("mips: load at pc %#x: %w", c.pc, err)
		}
		switch op {
		case opLb:
			c.wr(rt, uint32(int32(int8(v))))
		case opLbu:
			c.wr(rt, uint32(uint8(v)))
		case opLh:
			c.wr(rt, uint32(int32(int16(v))))
		case opLhu:
			c.wr(rt, uint32(uint16(v)))
		case opLw:
			c.wr(rt, uint32(v))
		case opLwc1:
			c.f[rt] = uint64(uint32(v))
		case opLdc1:
			c.f[rt] = v
		}
		if op != opLwc1 && op != opLdc1 {
			loadedReg = int(rt)
		}
	case opSb, opSh, opSw, opSwc1, opSdc1:
		addr := uint64(c.ru(rs) + uint32(sImm))
		var size int
		var v uint64
		switch op {
		case opSb:
			size, v = 1, uint64(uint8(c.ru(rt)))
		case opSh:
			size, v = 2, uint64(uint16(c.ru(rt)))
		case opSw:
			size, v = 4, uint64(c.ru(rt))
		case opSwc1:
			size, v = 4, uint64(uint32(c.f[rt]))
		case opSdc1:
			size, v = 8, c.f[rt]
		}
		if err := c.m.Store(addr, size, v); err != nil {
			return fmt.Errorf("mips: store at pc %#x: %w", c.pc, err)
		}
	case opCop1:
		if err := c.cop1(w, rs, rt, rd, sh, fn, sImm, &target, &hasTarget); err != nil {
			return err
		}
	default:
		return fmt.Errorf("mips: unknown opcode %#x (word %#08x) at %#x", op, w, c.pc)
	}

	c.lastLoad = loadedReg

	switch {
	case c.inDelay:
		c.pc = c.delayTarget
		c.inDelay = false
		if hasTarget {
			// Branch in a delay slot is architecturally undefined;
			// surface it as a bug.
			return fmt.Errorf("mips: branch in delay slot at %#x", c.pc)
		}
	case hasTarget:
		c.inDelay = true
		c.delayTarget = target
		c.pc += 4
	default:
		c.pc += 4
	}
	return nil
}

// cop1 executes a COP1 (floating point) instruction.
func (c *CPU) cop1(w, fmtf, ft, fs, fd, fn uint32, sImm int32, target *uint64, hasTarget *bool) error {
	switch fmtf {
	case fmtMFC1:
		c.wr(ft, uint32(c.f[fs]))
		return nil
	case fmtMTC1:
		c.f[fs] = uint64(c.ru(ft))
		return nil
	case fmtBC:
		taken := (ft&1 == 1) == c.cc
		c.edge(c.pc, taken)
		if taken {
			*target = c.pc + 4 + uint64(int64(sImm)<<2)
			*hasTarget = true
		}
		return nil
	case fmtS:
		a, b := c.fs(fs), c.fs(ft)
		switch fn {
		case fpAdd:
			c.wfs(fd, a+b)
			c.baseCycles++
		case fpSub:
			c.wfs(fd, a-b)
			c.baseCycles++
		case fpMul:
			c.wfs(fd, a*b)
			c.baseCycles += 3
		case fpDiv:
			c.wfs(fd, a/b)
			c.baseCycles += 11
		case fpSqrt:
			c.wfs(fd, float32(math.Sqrt(float64(a))))
			c.baseCycles += 29
		case fpAbs:
			c.wfs(fd, float32(math.Abs(float64(a))))
		case fpMov:
			c.f[fd] = c.f[fs] & 0xffffffff
		case fpNeg:
			c.wfs(fd, -a)
		case fpCvtD:
			c.wfd(fd, float64(a))
		case fpCvtW:
			c.f[fd] = uint64(uint32(truncToI32(float64(a))))
		case fpCEq:
			c.cc = a == b
		case fpCLt:
			c.cc = a < b
		case fpCLe:
			c.cc = a <= b
		default:
			return fmt.Errorf("mips: unknown fp.s funct %#x at %#x", fn, c.pc)
		}
		return nil
	case fmtD:
		a, b := c.fd(fs), c.fd(ft)
		switch fn {
		case fpAdd:
			c.wfd(fd, a+b)
			c.baseCycles++
		case fpSub:
			c.wfd(fd, a-b)
			c.baseCycles++
		case fpMul:
			c.wfd(fd, a*b)
			c.baseCycles += 4
		case fpDiv:
			c.wfd(fd, a/b)
			c.baseCycles += 18
		case fpSqrt:
			c.wfd(fd, math.Sqrt(a))
			c.baseCycles += 29
		case fpAbs:
			c.wfd(fd, math.Abs(a))
		case fpMov:
			c.f[fd] = c.f[fs]
		case fpNeg:
			c.wfd(fd, -a)
		case fpCvtS:
			c.wfs(fd, float32(a))
		case fpCvtW:
			c.f[fd] = uint64(uint32(truncToI32(a)))
		case fpCEq:
			c.cc = a == b
		case fpCLt:
			c.cc = a < b
		case fpCLe:
			c.cc = a <= b
		default:
			return fmt.Errorf("mips: unknown fp.d funct %#x at %#x", fn, c.pc)
		}
		return nil
	case fmtW:
		// cvt from integer bits.
		iv := int32(uint32(c.f[fs]))
		switch fn {
		case fpCvtS:
			c.wfs(fd, float32(iv))
		case fpCvtD:
			c.wfd(fd, float64(iv))
		default:
			return fmt.Errorf("mips: unknown fp.w funct %#x at %#x", fn, c.pc)
		}
		return nil
	}
	return fmt.Errorf("mips: unknown COP1 fmt %#x (word %#08x) at %#x", fmtf, w, c.pc)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
