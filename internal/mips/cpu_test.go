package mips

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// run assembles raw words at an address and steps until the PC leaves
// them, returning the CPU for inspection.
func runWords(t *testing.T, words []uint32, steps int) *CPU {
	t.Helper()
	m := mem.New(1<<16, false)
	cpu := NewCPU(m)
	base := uint64(0x1000)
	for i, w := range words {
		if err := m.Store(base+4*uint64(i), 4, uint64(w)); err != nil {
			t.Fatal(err)
		}
	}
	cpu.SetPC(base)
	for i := 0; i < steps; i++ {
		if err := cpu.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return cpu
}

// TestDelaySlotExecutes pins the fundamental delay-slot semantics: the
// instruction after a taken branch executes before the target.
func TestDelaySlotExecutes(t *testing.T) {
	// beq zero, zero, +2 ; addiu t0, zero, 7 (delay slot) ;
	// addiu t1, zero, 1 (skipped) ; addiu t2, zero, 2 (target)
	words := []uint32{
		iType(opBeq, 0, 0, 2),
		iType(opAddiu, 0, 8, 7),
		iType(opAddiu, 0, 9, 1),
		iType(opAddiu, 0, 10, 2),
	}
	cpu := runWords(t, words, 3)
	if cpu.Reg(core.GPR(8)) != 7 {
		t.Error("delay slot did not execute")
	}
	if cpu.Reg(core.GPR(9)) != 0 {
		t.Error("skipped instruction executed")
	}
	if cpu.Reg(core.GPR(10)) != 2 {
		t.Error("branch target not reached")
	}
}

// TestNotTakenBranchFallsThrough checks untaken branches.
func TestNotTakenBranchFallsThrough(t *testing.T) {
	words := []uint32{
		iType(opAddiu, 0, 8, 1), // t0 = 1
		iType(opBne, 0, 0, 2),   // never taken
		iType(opAddiu, 0, 9, 5), // executes (slot of untaken branch)
		iType(opAddiu, 0, 10, 6),
	}
	cpu := runWords(t, words, 4)
	if cpu.Reg(core.GPR(9)) != 5 || cpu.Reg(core.GPR(10)) != 6 {
		t.Error("fall-through path wrong")
	}
}

// TestJalWritesRA checks the link register points past the delay slot.
func TestJalWritesRA(t *testing.T) {
	words := []uint32{
		jType(opJal, (0x1000+16)>>2),
		encNop,
		encNop,
		encNop,
		iType(opAddiu, 0, 8, 9), // jal target
	}
	cpu := runWords(t, words, 3)
	if got := cpu.Reg(core.GPR(31)); got != 0x1000+8 {
		t.Errorf("ra = %#x, want %#x", got, 0x1000+8)
	}
	if cpu.Reg(core.GPR(8)) != 9 {
		t.Error("jal target not reached")
	}
}

// TestCycleModel pins the long-latency charges: a multiply costs more
// than an add, and a load immediately used stalls one cycle.
func TestCycleModel(t *testing.T) {
	add := runWords(t, []uint32{rType(fnAddu, 8, 9, 10, 0)}, 1).Cycles()
	mul := runWords(t, []uint32{rType(fnMult, 8, 9, 0, 0)}, 1).Cycles()
	div := runWords(t, []uint32{rType(fnDiv, 8, 9, 0, 0)}, 1).Cycles()
	if !(add < mul && mul < div) {
		t.Errorf("cycle ordering: add=%d mult=%d div=%d", add, mul, div)
	}

	// Load followed by an immediate use stalls; separated by an
	// unrelated instruction it does not.
	stall := runWords(t, []uint32{
		iType(opLw, 0, 8, 0x100),  // lw t0, 0x100(zero)
		rType(fnAddu, 8, 8, 9, 0), // uses t0 immediately
	}, 2).Cycles()
	noStall := runWords(t, []uint32{
		iType(opLw, 0, 8, 0x100),
		rType(fnAddu, 10, 11, 12, 0), // unrelated
	}, 2).Cycles()
	if stall != noStall+1 {
		t.Errorf("load-use stall: %d vs %d", stall, noStall)
	}
}

// TestBranchInDelaySlotFaults pins the guard for an architectural
// violation our generator must never produce.
func TestBranchInDelaySlotFaults(t *testing.T) {
	m := mem.New(1<<16, false)
	cpu := NewCPU(m)
	base := uint64(0x1000)
	words := []uint32{
		iType(opBeq, 0, 0, 2),
		iType(opBeq, 0, 0, 4), // branch in delay slot
	}
	for i, w := range words {
		if err := m.Store(base+4*uint64(i), 4, uint64(w)); err != nil {
			t.Fatal(err)
		}
	}
	cpu.SetPC(base)
	if err := cpu.Step(); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Step(); err == nil {
		t.Fatal("branch in delay slot should fault")
	}
}

// TestUnknownOpcodeFaults checks decode errors carry the PC.
func TestUnknownOpcodeFaults(t *testing.T) {
	m := mem.New(1<<16, false)
	cpu := NewCPU(m)
	if err := m.Store(0x1000, 4, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	cpu.SetPC(0x1000)
	err := cpu.Step()
	if err == nil || !strings.Contains(err.Error(), "0x1000") {
		t.Fatalf("want decode fault with pc, got %v", err)
	}
}

// TestDisasmGolden pins a few encodings to their assembly text.
func TestDisasmGolden(t *testing.T) {
	b := New()
	cases := []struct {
		w    uint32
		want string
	}{
		{iType(opAddiu, 4, 4, 1), "addiu a0, a0, 1"},
		{rType(fnJr, 31, 0, 0, 0), "jr ra"},
		{rType(fnAddu, 4, 0, 2, 0), "move v0, a0"},
		{iType(opLw, 29, 31, 0), "lw ra, 0(sp)"},
		{encNop, "nop"},
		{iType(opLui, 0, 1, 0x1234), "lui at, 0x1234"},
		{jType(opJal, 0x100), "jal 0x400"},
	}
	for _, c := range cases {
		if got := b.Disasm(c.w, 0); got != c.want {
			t.Errorf("Disasm(%#08x) = %q, want %q", c.w, got, c.want)
		}
	}
}
