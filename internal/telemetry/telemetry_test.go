package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter not idempotent: second lookup returned a new instrument")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
}

func TestHistogramBounds(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	// One observation per region: bucket 0, 1, 2 and overflow.
	for _, v := range []uint64{10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	// Cumulative, prom-style: le=10 -> 1, le=100 -> 3, le=1000 -> 5, +Inf -> 7.
	want := []uint64{1, 3, 5, 7}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(want))
	}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket[%d] (le=%d) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if s.Buckets[len(s.Buckets)-1].UpperBound != math.MaxUint64 {
		t.Error("last bucket must be +Inf")
	}
	if wantSum := uint64(10 + 11 + 100 + 101 + 1000 + 1001 + 5000); s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]uint64{10, 10})
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(uint64(i))
				if i%100 == 0 {
					_ = r.TextString()
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

// TestDisabledPathAllocFree pins the disabled-telemetry contract: the emit
// hot path pays one atomic load (the Enabled gate) and zero allocations.
func TestDisabledPathAllocFree(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact gate core.Asm uses around its emit instrumentation.
		if Enabled() {
			t.Fatal("telemetry unexpectedly enabled")
		}
		// Disabled trace records are equally free.
		TraceRecord(PhaseEmit, "mips", "f", time.Nanosecond, 1)
	})
	if allocs != 0 {
		t.Errorf("disabled gate allocates %.1f per run, want 0", allocs)
	}
}

// TestEnabledOpsAllocFree verifies the instruments themselves stay off the
// heap once created: Inc/Add/Observe must never allocate.
func TestEnabledOpsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(35)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Errorf("instrument ops allocate %.1f per run, want 0", allocs)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("codegen.mips.funcs").Add(3)
	r.Gauge("cache.entries").Set(16)
	r.GaugeFunc("derived.rate", func() float64 { return 42.5 })
	r.Histogram("emit.ns", []uint64{100, 200}).Observe(150)

	text := r.TextString()
	for _, want := range []string{
		"# TYPE codegen_mips_funcs counter",
		"codegen_mips_funcs 3",
		"cache_entries 16",
		"derived_rate 42.5",
		`emit_ns_bucket{le="200"} 1`,
		`emit_ns_bucket{le="+Inf"} 1`,
		"emit_ns_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if m["codegen.mips.funcs"] != float64(3) {
		t.Errorf("json counter = %v, want 3", m["codegen.mips.funcs"])
	}
}

func TestTraceRing(t *testing.T) {
	SetTraceEnabled(true)
	defer SetTraceEnabled(false)
	TraceRecord(PhaseInstall, "mips", "f1", 100*time.Nanosecond, 1)
	TraceRecord(PhaseCall, "mips", "f1", 200*time.Nanosecond, 1)
	evs := TraceEvents()
	if len(evs) < 2 {
		t.Fatalf("trace events = %d, want >= 2", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Phase != "call" || last.Name != "f1" || last.DurNS != 200 {
		t.Errorf("last event = %+v, want call/f1/200ns", last)
	}
	if evs[len(evs)-2].Seq >= last.Seq {
		t.Error("trace sequence numbers must be increasing")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	mux := NewMux(r)

	get := func(path, accept string) (int, string, string) {
		req := httptest.NewRequest("GET", path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		return w.Code, w.Header().Get("Content-Type"), w.Body.String()
	}

	code, ct, body := get("/metrics", "")
	if code != 200 || !strings.Contains(body, "hits 1") {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	code, ct, body = get("/metrics.json", "")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Errorf("/metrics.json: code %d, content-type %q", code, ct)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	code, _, body = get("/metrics?format=json", "")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/metrics?format=json: code %d, body %q", code, body)
	}
}

func TestForBackendMemoized(t *testing.T) {
	a := ForBackend("testbk")
	b := ForBackend("testbk")
	if a != b {
		t.Error("ForBackend must return the same stats for the same backend")
	}
	a.Funcs.Inc()
	if b.Funcs.Load() != 1 {
		t.Error("memoized stats must share counters")
	}
}
