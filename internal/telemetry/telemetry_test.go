package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter not idempotent: second lookup returned a new instrument")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
}

func TestHistogramBounds(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	// One observation per region: bucket 0, 1, 2 and overflow.
	for _, v := range []uint64{10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	// Cumulative, prom-style: le=10 -> 1, le=100 -> 3, le=1000 -> 5, +Inf -> 7.
	want := []uint64{1, 3, 5, 7}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(want))
	}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket[%d] (le=%d) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if s.Buckets[len(s.Buckets)-1].UpperBound != math.MaxUint64 {
		t.Error("last bucket must be +Inf")
	}
	if wantSum := uint64(10 + 11 + 100 + 101 + 1000 + 1001 + 5000); s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]uint64{10, 10})
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(uint64(i))
				if i%100 == 0 {
					_ = r.TextString()
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

// TestDisabledPathAllocFree pins the disabled-telemetry contract: the emit
// hot path pays one atomic load (the Enabled gate) and zero allocations.
func TestDisabledPathAllocFree(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact gate core.Asm uses around its emit instrumentation.
		if Enabled() {
			t.Fatal("telemetry unexpectedly enabled")
		}
		// Disabled trace records are equally free.
		TraceRecord(PhaseEmit, "mips", "f", time.Nanosecond, 1)
	})
	if allocs != 0 {
		t.Errorf("disabled gate allocates %.1f per run, want 0", allocs)
	}
}

// TestEnabledOpsAllocFree verifies the instruments themselves stay off the
// heap once created: Inc/Add/Observe must never allocate.
func TestEnabledOpsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(35)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Errorf("instrument ops allocate %.1f per run, want 0", allocs)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("codegen.mips.funcs").Add(3)
	r.Gauge("cache.entries").Set(16)
	r.GaugeFunc("derived.rate", func() float64 { return 42.5 })
	r.Histogram("emit.ns", []uint64{100, 200}).Observe(150)

	text := r.TextString()
	for _, want := range []string{
		"# TYPE codegen_mips_funcs counter",
		"codegen_mips_funcs 3",
		"cache_entries 16",
		"derived_rate 42.5",
		`emit_ns_bucket{le="200"} 1`,
		`emit_ns_bucket{le="+Inf"} 1`,
		"emit_ns_count 1",
		"emit_ns_min 150",
		"emit_ns_max 150",
		"emit_ns_p50 150",
		"emit_ns_p99 150",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if m["codegen.mips.funcs"] != float64(3) {
		t.Errorf("json counter = %v, want 3", m["codegen.mips.funcs"])
	}
}

func TestTraceRing(t *testing.T) {
	SetTraceEnabled(true)
	defer SetTraceEnabled(false)
	TraceRecord(PhaseInstall, "mips", "f1", 100*time.Nanosecond, 1)
	TraceRecord(PhaseCall, "mips", "f1", 200*time.Nanosecond, 1)
	evs := TraceEvents()
	if len(evs) < 2 {
		t.Fatalf("trace events = %d, want >= 2", len(evs))
	}
	last := evs[len(evs)-1]
	if last.Phase != "call" || last.Name != "f1" || last.DurNS != 200 {
		t.Errorf("last event = %+v, want call/f1/200ns", last)
	}
	if evs[len(evs)-2].Seq >= last.Seq {
		t.Error("trace sequence numbers must be increasing")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	if s := h.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
	// 98 small values in the le=10 bucket, one mid, one huge.
	for i := 0; i < 98; i++ {
		h.Observe(5)
	}
	h.Observe(50)
	h.Observe(4000)
	s := h.Summary()
	if s.Count != 100 || s.Min != 5 || s.Max != 4000 {
		t.Fatalf("summary = %+v, want count=100 min=5 max=4000", s)
	}
	if wantSum := uint64(98*5 + 50 + 4000); s.Sum != wantSum || s.Mean != float64(wantSum)/100 {
		t.Fatalf("sum/mean = %d/%v, want %d/%v", s.Sum, s.Mean, wantSum, float64(wantSum)/100)
	}
	// p50 falls in the le=10 bucket; p99 in the le=100 bucket (99th of
	// 100 sorted values is the 50).  Bucket-resolution estimates report
	// the bucket upper bound.
	if s.P50 != 10 {
		t.Errorf("p50 = %d, want 10 (le=10 bucket bound)", s.P50)
	}
	if s.P99 != 100 {
		t.Errorf("p99 = %d, want 100 (le=100 bucket bound)", s.P99)
	}
	// A quantile landing in the overflow bucket reports the observed max,
	// not +Inf.
	h2 := NewHistogram([]uint64{10})
	h2.Observe(99999)
	if s2 := h2.Summary(); s2.P50 != 99999 || s2.P99 != 99999 {
		t.Errorf("overflow quantiles = p50=%d p99=%d, want observed max", s2.P50, s2.P99)
	}
	// Single observation inside a wide bucket: clamp to the observed
	// range rather than reporting a bound below min.
	h3 := NewHistogram([]uint64{1000})
	h3.Observe(700)
	if s3 := h3.Summary(); s3.P50 < 700 || s3.P99 < 700 {
		t.Errorf("clamped quantiles = %+v, want >= min", s3)
	}
}

func TestSummaryConcurrentMinMax(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != 8000 || s.Min != 1 || s.Max != 8000 {
		t.Fatalf("summary = %+v, want count=8000 min=1 max=8000", s)
	}
}

func TestSummarySnapshotBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(string(rune('a' + i))).Add(uint64(i + 1))
	}
	r.Histogram("phase_ns", nil).Observe(500)
	out, elided := r.SummarySnapshot(5)
	if elided != 15 {
		t.Fatalf("elided = %d, want 15", elided)
	}
	// Histograms are always present, reduced to summaries.
	if _, ok := out["phase_ns"].(Summary); !ok {
		t.Fatalf("phase_ns = %T, want Summary", out["phase_ns"])
	}
	if len(out) != 6 { // 5 top scalars + 1 histogram
		t.Fatalf("len = %d, want 6: %v", len(out), out)
	}
	// The kept scalars are the largest values.
	for _, name := range []string{"t", "s", "r", "q", "p"} {
		if _, ok := out[name]; !ok {
			t.Errorf("top-5 missing %q", name)
		}
	}
}

// TestTraceRingConcurrent hammers the telemetry trace ring under the race
// detector: N writers, concurrent snapshot readers, bounded retention and
// no torn events.
func TestTraceRingConcurrent(t *testing.T) {
	SetTraceEnabled(true)
	defer SetTraceEnabled(false)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := TraceEvents()
				if len(evs) > traceCap {
					t.Error("trace snapshot exceeds ring capacity")
					return
				}
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq != evs[i-1].Seq+1 {
						t.Error("torn trace snapshot: non-contiguous seq")
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				TraceRecord(PhaseCall, "mips", "ring", time.Duration(i), int64(w))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	for _, ev := range TraceEvents() {
		if ev.Name == "ring" && (ev.Phase != "call" || ev.Backend != "mips") {
			t.Fatalf("torn trace event: %+v", ev)
		}
	}
}

func TestHTTPEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	mux := NewMux(r)

	get := func(path, accept string) (int, string, string) {
		req := httptest.NewRequest("GET", path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		return w.Code, w.Header().Get("Content-Type"), w.Body.String()
	}

	code, ct, body := get("/metrics", "")
	if code != 200 || !strings.Contains(body, "hits 1") {
		t.Errorf("/metrics: code %d, body %q", code, body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	code, ct, body = get("/metrics.json", "")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Errorf("/metrics.json: code %d, content-type %q", code, ct)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/metrics.json invalid: %v", err)
	}
	code, _, body = get("/metrics?format=json", "")
	if code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/metrics?format=json: code %d, body %q", code, body)
	}
}

func TestForBackendMemoized(t *testing.T) {
	a := ForBackend("testbk")
	b := ForBackend("testbk")
	if a != b {
		t.Error("ForBackend must return the same stats for the same backend")
	}
	a.Funcs.Inc()
	if b.Funcs.Load() != 1 {
		t.Error("memoized stats must share counters")
	}
}
