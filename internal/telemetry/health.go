package telemetry

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Health is the process liveness/readiness state behind the /healthz and
// /readyz endpoints.  Liveness is implicit (the handler answering at all
// is the signal); readiness is an explicit, named set of conditions the
// owner flips as startup milestones complete — a server marks
// "snapshot_restored" after reloading its warm cache and
// "warmup_drained" once the restore flights settle, and /readyz turns
// 200 only when every registered condition is true.
//
// The zero value is ready (no conditions registered).  Safe for
// concurrent use.
type Health struct {
	mu       sync.Mutex
	conds    map[string]bool
	degraded map[string]bool
}

// Expect registers a readiness condition in the false state.  Until
// Set(name, true) is called, Ready reports false and /readyz serves 503
// naming the unmet condition.  Re-registering an existing condition
// resets it to false.
func (h *Health) Expect(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conds == nil {
		h.conds = make(map[string]bool)
	}
	h.conds[name] = false
}

// Set marks one readiness condition met (or, with false, unmet again —
// a server draining for shutdown can flip itself unready so load
// balancers stop routing to it before the listener closes).
func (h *Health) Set(name string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conds == nil {
		h.conds = make(map[string]bool)
	}
	h.conds[name] = ok
}

// Ready reports whether every registered condition is met, and the names
// of those still unmet.
func (h *Health) Ready() (bool, []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var unmet []string
	for name, ok := range h.conds {
		if !ok {
			unmet = append(unmet, name)
		}
	}
	return len(unmet) == 0, unmet
}

// Degrade records a named degradation reason.  Degradations are softer
// than readiness conditions: the process still serves (readyz stays 200)
// but advertises the reason — an SLO watchdog flags "slo:p99:global"
// while the latency objective is breached, and operators or autoscalers
// polling /readyz see it without the server leaving rotation.
// Idempotent; re-degrading an active reason is a no-op.
func (h *Health) Degrade(reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.degraded == nil {
		h.degraded = make(map[string]bool)
	}
	h.degraded[reason] = true
}

// ClearDegraded removes a degradation reason set by Degrade.  Clearing
// an unknown reason is a no-op.
func (h *Health) ClearDegraded(reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.degraded, reason)
}

// Degraded returns the active degradation reasons, sorted.
func (h *Health) Degraded() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.degraded) == 0 {
		return nil
	}
	out := make([]string, 0, len(h.degraded))
	for r := range h.degraded {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RegisterHealth mounts /healthz (liveness: always 200 while the process
// serves) and /readyz (readiness: 200 once every Health condition is
// met, 503 naming the unmet conditions otherwise) on mux.
func RegisterHealth(mux *http.ServeMux, h *Health) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ready, unmet := h.Ready()
		degraded := h.Degraded()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, name := range unmet {
				fmt.Fprintf(w, "unready: %s\n", name)
			}
			for _, reason := range degraded {
				fmt.Fprintf(w, "degraded: %s\n", reason)
			}
			return
		}
		fmt.Fprintln(w, "ready")
		for _, reason := range degraded {
			fmt.Fprintf(w, "degraded: %s\n", reason)
		}
	})
}
