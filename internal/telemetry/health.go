package telemetry

import (
	"fmt"
	"net/http"
	"sync"
)

// Health is the process liveness/readiness state behind the /healthz and
// /readyz endpoints.  Liveness is implicit (the handler answering at all
// is the signal); readiness is an explicit, named set of conditions the
// owner flips as startup milestones complete — a server marks
// "snapshot_restored" after reloading its warm cache and
// "warmup_drained" once the restore flights settle, and /readyz turns
// 200 only when every registered condition is true.
//
// The zero value is ready (no conditions registered).  Safe for
// concurrent use.
type Health struct {
	mu    sync.Mutex
	conds map[string]bool
}

// Expect registers a readiness condition in the false state.  Until
// Set(name, true) is called, Ready reports false and /readyz serves 503
// naming the unmet condition.  Re-registering an existing condition
// resets it to false.
func (h *Health) Expect(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conds == nil {
		h.conds = make(map[string]bool)
	}
	h.conds[name] = false
}

// Set marks one readiness condition met (or, with false, unmet again —
// a server draining for shutdown can flip itself unready so load
// balancers stop routing to it before the listener closes).
func (h *Health) Set(name string, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conds == nil {
		h.conds = make(map[string]bool)
	}
	h.conds[name] = ok
}

// Ready reports whether every registered condition is met, and the names
// of those still unmet.
func (h *Health) Ready() (bool, []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var unmet []string
	for name, ok := range h.conds {
		if !ok {
			unmet = append(unmet, name)
		}
	}
	return len(unmet) == 0, unmet
}

// RegisterHealth mounts /healthz (liveness: always 200 while the process
// serves) and /readyz (readiness: 200 once every Health condition is
// met, 503 naming the unmet conditions otherwise) on mux.
func RegisterHealth(mux *http.ServeMux, h *Health) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ready, unmet := h.Ready()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, name := range unmet {
				fmt.Fprintf(w, "unready: %s\n", name)
			}
			return
		}
		fmt.Fprintln(w, "ready")
	})
}
