package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of a generated function's lifecycle, in the
// paper's order: v_lambda starts emission, v_end finishes and links,
// the verifier checks the image, install places it, and the function is
// then called until it is evicted.
type Phase uint8

const (
	// PhaseEmit covers v_lambda through v_end: instruction emission,
	// backpatching, prologue/epilogue synthesis and pool layout.
	PhaseEmit Phase = iota
	// PhaseVerify is the pre-install static verifier.
	PhaseVerify
	// PhaseInstall is code placement, relocation and the memory copy.
	PhaseInstall
	// PhaseCall is one execution of an installed function.
	PhaseCall
	// PhaseEvict is code reclamation (cache eviction or Uninstall).
	PhaseEvict
)

func (p Phase) String() string {
	switch p {
	case PhaseEmit:
		return "emit"
	case PhaseVerify:
		return "verify"
	case PhaseInstall:
		return "install"
	case PhaseCall:
		return "call"
	case PhaseEvict:
		return "evict"
	}
	return "unknown"
}

// CodegenStats bundles the per-backend lifecycle instruments, resolved
// once per backend so hot paths update atomics without registry lookups.
type CodegenStats struct {
	// Funcs counts functions completed by v_end; Insns counts the VCODE
	// (source-level) instructions they contained.
	Funcs, Insns *Counter
	// EmitNS..CallNS are per-phase wall-time histograms in nanoseconds.
	EmitNS, VerifyNS, InstallNS, CallNS *Histogram
	// Installs and Uninstalls count code placements and reclamations.
	Installs, Uninstalls *Counter
	// Calls counts completed calls; CallErrors the subset that failed.
	Calls, CallErrors *Counter
	// SimInsns and SimCycles accumulate the simulator's retired
	// instruction and cycle counts across calls.
	SimInsns, SimCycles *Counter
}

var backendStats sync.Map // backend name -> *CodegenStats

// ForBackend returns the Default-registry instrument bundle for a backend
// (memoized; safe for concurrent use).
func ForBackend(backend string) *CodegenStats {
	if s, ok := backendStats.Load(backend); ok {
		return s.(*CodegenStats)
	}
	cg, mc := "codegen."+backend+".", "machine."+backend+"."
	s := &CodegenStats{
		Funcs:      Default.Counter(cg + "funcs"),
		Insns:      Default.Counter(cg + "insns"),
		EmitNS:     Default.Histogram(cg+"emit_ns", nil),
		VerifyNS:   Default.Histogram(mc+"verify_ns", nil),
		InstallNS:  Default.Histogram(mc+"install_ns", nil),
		CallNS:     Default.Histogram(mc+"call_ns", nil),
		Installs:   Default.Counter(mc + "installs"),
		Uninstalls: Default.Counter(mc + "uninstalls"),
		Calls:      Default.Counter(mc + "calls"),
		CallErrors: Default.Counter(mc + "call_errors"),
		SimInsns:   Default.Counter(mc + "sim_insns"),
		SimCycles:  Default.Counter(mc + "sim_cycles"),
	}
	actual, _ := backendStats.LoadOrStore(backend, s)
	return actual.(*CodegenStats)
}

// TraceEvent is one structured lifecycle record: which phase ran, for
// which backend and function, how long it took, and a phase-specific
// magnitude (instructions emitted, simulator instructions retired, bytes
// reclaimed).
type TraceEvent struct {
	Seq     uint64        `json:"seq"`
	At      time.Time     `json:"at"`
	Phase   string        `json:"phase"`
	Backend string        `json:"backend"`
	Name    string        `json:"name"`
	DurNS   time.Duration `json:"dur_ns"`
	N       int64         `json:"n"`
}

// traceCap bounds the trace ring: the most recent traceCap events are
// retained.
const traceCap = 1024

var (
	traceOn  atomic.Bool
	traceMu  sync.Mutex
	traceBuf [traceCap]TraceEvent
	traceSeq uint64
)

// TraceEnabled reports whether lifecycle trace recording is on.
func TraceEnabled() bool { return traceOn.Load() }

// SetTraceEnabled turns the lifecycle trace ring on or off (default off;
// tracing costs a mutex and a copy per lifecycle event, so it is gated
// separately from the counters).
func SetTraceEnabled(on bool) { traceOn.Store(on) }

// TraceRecord appends one lifecycle event to the ring.  It is a no-op
// (one atomic load) unless tracing is enabled.
func TraceRecord(p Phase, backend, name string, dur time.Duration, n int64) {
	if !traceOn.Load() {
		return
	}
	TraceRecordAt(time.Now(), p, backend, name, dur, n)
}

// TraceRecordAt is TraceRecord with a caller-supplied timestamp, for hot
// paths that already read the clock (the per-call path saves one
// time.Now per event).
func TraceRecordAt(at time.Time, p Phase, backend, name string, dur time.Duration, n int64) {
	if !traceOn.Load() {
		return
	}
	// Build the event outside the lock: the ring mutex is on every
	// machine call's hot path when tracing is on, so the critical
	// section is just the slot store and sequence bump.
	ev := TraceEvent{
		At:      at,
		Phase:   p.String(),
		Backend: backend,
		Name:    name,
		DurNS:   dur,
		N:       n,
	}
	traceMu.Lock()
	ev.Seq = traceSeq
	traceBuf[traceSeq%traceCap] = ev
	traceSeq++
	traceMu.Unlock()
}

// TraceEvents snapshots the ring, oldest first.
func TraceEvents() []TraceEvent {
	traceMu.Lock()
	defer traceMu.Unlock()
	n := traceSeq
	if n > traceCap {
		n = traceCap
	}
	out := make([]TraceEvent, 0, n)
	start := traceSeq - n
	for i := start; i < traceSeq; i++ {
		out = append(out, traceBuf[i%traceCap])
	}
	return out
}
