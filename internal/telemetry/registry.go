package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a named collection of metrics.  Registration (get-or-create
// by name) takes a mutex; the returned instruments are updated with plain
// atomics, so steady-state metric traffic never contends on the registry
// lock.  Callers should resolve instruments once and cache the handles.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Default is the process-wide registry the pipeline instruments feed.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds (nil = DefTimeBounds) if needed.  Bounds are only
// consulted on creation.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers (or replaces) a derived gauge evaluated at snapshot
// time — the bridge for subsystems that already keep their own atomic
// counters, like the code cache.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns every metric's current value keyed by registered name:
// counters and gauges as numbers, gauge funcs as float64, histograms as
// HistogramSnapshot.  The map is JSON-marshalable and is the single
// machine-readable dump format.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	for name, fn := range r.funcs {
		out[name] = fn()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// SummarySnapshot is the bounded cousin of Snapshot, sized for artifacts
// that must stay diffable: every histogram is reduced to its Summary, and
// only the topN largest scalar metrics (counters, gauges, gauge funcs —
// ranked by value, ties broken by name) are kept.  The second return is
// how many scalars were elided.
func (r *Registry) SummarySnapshot(topN int) (map[string]any, int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	type scalar struct {
		name string
		rank float64
		val  any
	}
	scalars := make([]scalar, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for name, c := range r.counters {
		v := c.Load()
		scalars = append(scalars, scalar{name, float64(v), v})
	}
	for name, g := range r.gauges {
		v := g.Load()
		scalars = append(scalars, scalar{name, float64(v), v})
	}
	for name, fn := range r.funcs {
		v := fn()
		scalars = append(scalars, scalar{name, v, v})
	}
	sort.Slice(scalars, func(i, j int) bool {
		if scalars[i].rank != scalars[j].rank {
			return scalars[i].rank > scalars[j].rank
		}
		return scalars[i].name < scalars[j].name
	})
	kept := len(scalars)
	if topN >= 0 && kept > topN {
		kept = topN
	}
	out := make(map[string]any, kept+len(r.hists))
	for _, s := range scalars[:kept] {
		out[s.name] = s.val
	}
	for name, h := range r.hists {
		out[name] = h.Summary()
	}
	return out, len(scalars) - kept
}

// EachHistogram calls fn for every registered histogram in name order.
// The handles are live instruments; fn must not block on registry calls.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	hists := make([]*Histogram, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		hists = append(hists, r.hists[n])
	}
	r.mu.RUnlock()
	for i, n := range names {
		fn(n, hists[i])
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName maps a dotted metric name to a Prometheus-legal one.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText renders the registry in Prometheus text exposition format —
// the one human/scrape rendering path shared by the HTTP endpoint and by
// subsystem String() methods.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.RLock()
	defer r.mu.RUnlock()

	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	kind := make(map[string]byte)
	add := func(n string, k byte) {
		names = append(names, n)
		kind[n] = k
	}
	for n := range r.counters {
		add(n, 'c')
	}
	for n := range r.gauges {
		add(n, 'g')
	}
	for n := range r.funcs {
		add(n, 'f')
	}
	for n := range r.hists {
		add(n, 'h')
	}
	sort.Strings(names)

	for _, n := range names {
		pn := promName(n)
		switch kind[n] {
		case 'c':
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, r.counters[n].Load())
		case 'g':
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, r.gauges[n].Load())
		case 'f':
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(r.funcs[n]()))
		case 'h':
			s := r.hists[n].Snapshot()
			fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
			for _, b := range s.Buckets {
				le := "+Inf"
				if b.UpperBound != 1<<64-1 {
					le = strconv.FormatUint(b.UpperBound, 10)
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, b.Count)
			}
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, s.Sum, pn, s.Count)
			// Precomputed quantiles and extrema as gauges, so a plain
			// scrape sees the tail without histogram_quantile math.
			if sum := r.hists[n].Summary(); sum.Count > 0 {
				fmt.Fprintf(w, "%s_min %d\n%s_max %d\n", pn, sum.Min, pn, sum.Max)
				fmt.Fprintf(w, "%s_p50 %d\n%s_p99 %d\n", pn, sum.P50, pn, sum.P99)
			}
		}
	}
}

// TextString renders WriteText into a string.
func (r *Registry) TextString() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
