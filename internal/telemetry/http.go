package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// ServeHTTP makes a Registry an http.Handler: Prometheus text by default,
// the JSON dump with ?format=json (or an Accept header asking for JSON).
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" ||
		req.Header.Get("Accept") == "application/json" {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.WriteText(w)
}

var expvarOnce sync.Once

// PublishExpvar publishes the Default registry's snapshot (and the trace
// ring) under the standard expvar names, so /debug/vars includes
// telemetry alongside the runtime's memstats.  Safe to call repeatedly.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return Default.Snapshot() }))
		expvar.Publish("telemetry_trace", expvar.Func(func() any { return TraceEvents() }))
	})
}

// NewMux returns an http.ServeMux exposing reg at /metrics (Prometheus
// text), /metrics.json (JSON dump), the expvar page at /debug/vars, and
// the standard profiler at /debug/pprof/* (mounted explicitly — the mux
// is private, so the net/http/pprof init-time DefaultServeMux
// registration never reaches it).  Callers mount extra handlers on the
// result.
func NewMux(reg *Registry) *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
