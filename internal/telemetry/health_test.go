package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestHealthzAlwaysOK(t *testing.T) {
	var h Health
	h.Expect("never_met")
	mux := http.NewServeMux()
	RegisterHealth(mux, &h)
	code, body := get(t, mux, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok (liveness must not depend on readiness)", code, body)
	}
}

func TestReadyzConditionLifecycle(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	RegisterHealth(mux, &h)

	// Zero conditions: ready by default.
	if code, _ := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with no conditions = %d, want 200", code)
	}

	// The server's startup milestones, registered unmet.
	h.Expect("snapshot_restored")
	h.Expect("warmup_drained")
	code, body := get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with unmet conditions = %d, want 503", code)
	}
	if !strings.Contains(body, "snapshot_restored") || !strings.Contains(body, "warmup_drained") {
		t.Fatalf("/readyz body %q should name both unmet conditions", body)
	}

	// Partially met is still unready.
	h.Set("snapshot_restored", true)
	code, body = get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with one unmet condition = %d, want 503", code)
	}
	if strings.Contains(body, "snapshot_restored") {
		t.Fatalf("/readyz body %q should not name a met condition", body)
	}

	h.Set("warmup_drained", true)
	if code, body = get(t, mux, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz with all conditions met = %d %q, want 200 ready", code, body)
	}

	// Flipping unready again (shutdown drain) turns 503 back on.
	h.Set("warmup_drained", false)
	if code, _ = get(t, mux, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after un-setting a condition = %d, want 503", code)
	}
}

func TestHealthReadyReportsUnmet(t *testing.T) {
	var h Health
	h.Expect("a")
	h.Expect("b")
	h.Set("a", true)
	ready, unmet := h.Ready()
	if ready || len(unmet) != 1 || unmet[0] != "b" {
		t.Fatalf("Ready() = %v %v, want false [b]", ready, unmet)
	}
}
