package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestHealthzAlwaysOK(t *testing.T) {
	var h Health
	h.Expect("never_met")
	mux := http.NewServeMux()
	RegisterHealth(mux, &h)
	code, body := get(t, mux, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok (liveness must not depend on readiness)", code, body)
	}
}

func TestReadyzConditionLifecycle(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	RegisterHealth(mux, &h)

	// Zero conditions: ready by default.
	if code, _ := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz with no conditions = %d, want 200", code)
	}

	// The server's startup milestones, registered unmet.
	h.Expect("snapshot_restored")
	h.Expect("warmup_drained")
	code, body := get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with unmet conditions = %d, want 503", code)
	}
	if !strings.Contains(body, "snapshot_restored") || !strings.Contains(body, "warmup_drained") {
		t.Fatalf("/readyz body %q should name both unmet conditions", body)
	}

	// Partially met is still unready.
	h.Set("snapshot_restored", true)
	code, body = get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with one unmet condition = %d, want 503", code)
	}
	if strings.Contains(body, "snapshot_restored") {
		t.Fatalf("/readyz body %q should not name a met condition", body)
	}

	h.Set("warmup_drained", true)
	if code, body = get(t, mux, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz with all conditions met = %d %q, want 200 ready", code, body)
	}

	// Flipping unready again (shutdown drain) turns 503 back on.
	h.Set("warmup_drained", false)
	if code, _ = get(t, mux, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after un-setting a condition = %d, want 503", code)
	}
}

func TestHealthReadyReportsUnmet(t *testing.T) {
	var h Health
	h.Expect("a")
	h.Expect("b")
	h.Set("a", true)
	ready, unmet := h.Ready()
	if ready || len(unmet) != 1 || unmet[0] != "b" {
		t.Fatalf("Ready() = %v %v, want false [b]", ready, unmet)
	}
}

func TestDegradedLifecycle(t *testing.T) {
	var h Health
	mux := http.NewServeMux()
	RegisterHealth(mux, &h)

	// Degradation is an annotation, not unreadiness: /readyz stays 200.
	h.Degrade("slo:p99:global")
	code, body := get(t, mux, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("/readyz while degraded = %d, want 200 (degradation must not leave rotation)", code)
	}
	if !strings.Contains(body, "degraded: slo:p99:global") {
		t.Fatalf("/readyz body %q should name the degradation", body)
	}

	// Degradations render alongside unmet conditions on the 503 path too.
	h.Expect("snapshot_restored")
	code, body = get(t, mux, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with unmet condition = %d, want 503", code)
	}
	if !strings.Contains(body, "unready: snapshot_restored") || !strings.Contains(body, "degraded: slo:p99:global") {
		t.Fatalf("/readyz body %q should carry both unready and degraded lines", body)
	}

	h.Set("snapshot_restored", true)
	h.ClearDegraded("slo:p99:global")
	h.ClearDegraded("never_set") // clearing an unknown reason is a no-op
	code, body = get(t, mux, "/readyz")
	if code != http.StatusOK || strings.Contains(body, "degraded") {
		t.Fatalf("/readyz after clear = %d %q, want plain 200 ready", code, body)
	}
	if got := h.Degraded(); got != nil {
		t.Fatalf("Degraded() after clear = %v, want nil", got)
	}
}

func TestDegradedSorted(t *testing.T) {
	var h Health
	h.Degrade("slo:p99:tenant-b")
	h.Degrade("slo:error_rate:global")
	h.Degrade("slo:p99:global")
	got := h.Degraded()
	want := []string{"slo:error_rate:global", "slo:p99:global", "slo:p99:tenant-b"}
	if len(got) != len(want) {
		t.Fatalf("Degraded() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Degraded() = %v, want %v (sorted)", got, want)
		}
	}
}

func TestHealthConcurrentDegradeClear(t *testing.T) {
	var h Health
	h.Expect("boot")
	h.Set("boot", true)
	mux := http.NewServeMux()
	RegisterHealth(mux, &h)

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			reason := fmt.Sprintf("slo:p99:t%d", id)
			for j := 0; j < iters; j++ {
				h.Degrade(reason)
				h.Set("boot", j%2 == 0)
				_, _ = h.Ready()
				_ = h.Degraded()
				h.ClearDegraded(reason)
			}
		}(i)
	}
	// Readers hammer the handler while writers flip state.
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					get(t, mux, "/readyz")
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	// Every writer cleared its own reason on the way out.
	if got := h.Degraded(); got != nil {
		t.Fatalf("Degraded() after concurrent churn = %v, want nil", got)
	}
	h.Set("boot", true)
	if ready, unmet := h.Ready(); !ready {
		t.Fatalf("Ready() = false %v after churn, want true", unmet)
	}
}
