// Package telemetry is the observability layer for the code-generation
// pipeline: a lock-light metrics registry (atomic counters, gauges and
// bounded histograms), a structured trace ring for the full
// v_lambda → emit → v_end → verify → install → call/evict lifecycle, and
// HTTP/JSON/expvar exporters.
//
// The whole package sits behind one global switch (SetEnabled); with it
// off, instrumented hot paths pay a single atomic load and allocate
// nothing, which keeps the paper's headline metric — host nanoseconds per
// generated instruction — honest even in instrumented builds.
package telemetry

import (
	"sync/atomic"
	"time"
)

// enabled is the global gate.  Instrumented call sites check Enabled()
// before touching clocks or metrics, so a disabled build's only cost is
// this one atomic load.
var enabled atomic.Bool

// Enabled reports whether telemetry collection is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns telemetry collection on or off (default off).
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a bounded histogram over uint64 observations (typically
// nanoseconds): a fixed set of upper bounds plus an overflow bucket, all
// updated with atomics.  Memory use is fixed at construction; Observe
// never allocates.
type Histogram struct {
	bounds []uint64 // sorted ascending upper bounds (inclusive)
	counts []atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
	// min is seeded with MaxUint64 so the first Observe always wins the
	// CAS; it is only meaningful while count > 0.
	min atomic.Uint64
	max atomic.Uint64
}

// NewHistogram builds a histogram with the given inclusive upper bounds;
// observations above the last bound land in an implicit overflow bucket.
// Bounds must be ascending; nil selects DefTimeBounds.
func NewHistogram(bounds []uint64) *Histogram {
	if bounds == nil {
		bounds = DefTimeBounds
	}
	b := append([]uint64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(^uint64(0))
	return h
}

// DefTimeBounds is the default nanosecond bucket layout: roughly
// quarter-decade steps from 250ns to 1s, sized for codegen phase timings.
var DefTimeBounds = []uint64{
	250, 1e3, 4e3, 16e3, 64e3, 256e3, // 250ns .. 256µs
	1e6, 4e6, 16e6, 64e6, 256e6, 1e9, // 1ms .. 1s
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	// Linear scan instead of sort.Search: bucket layouts are a dozen
	// entries and Observe sits on the per-call hot path, where the
	// closure-calling binary search costs more than it saves.
	b := h.bounds
	i := 0
	for i < len(b) && b[i] < v {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if d := time.Since(start); d > 0 {
		h.Observe(uint64(d))
	} else {
		h.Observe(0)
	}
}

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations at or below UpperBound (math.MaxUint64 marks the overflow
// bucket, rendered as "+Inf").
type Bucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot copies the histogram's current state (cumulative bucket
// counts, Prometheus-style).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := uint64(1<<64 - 1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Summary is the compact five-number reduction of a histogram, sized for
// bounded machine-readable records (the cgbench/v2 bench artifact) and
// one-line human renderings (the trace timeline).  P50/P99 are estimated
// from the bucket layout: the reported value is the upper bound of the
// bucket the quantile falls in, clamped to the observed [Min, Max].
type Summary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
}

// Summary reduces the histogram's current state.  An empty histogram
// summarizes to all zeros.
func (h *Histogram) Summary() Summary {
	s := Summary{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.P50 = h.quantile(0.50, s)
	s.P99 = h.quantile(0.99, s)
	return s
}

// quantile returns the bucket-resolution estimate for q in (0,1].
func (h *Histogram) quantile(q float64, s Summary) uint64 {
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			v := s.Max // overflow bucket: all we know is "above the last bound"
			if i < len(h.bounds) && h.bounds[i] < v {
				v = h.bounds[i]
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }
