# The CI entry point (.github/workflows/ci.yml runs the same steps).
verify:
	go build ./...
	go vet ./...
	go test -race ./...
	go run ./cmd/cgbench -cache -requests 50000
	go run ./cmd/cgbench -faults -calls 30000
	$(MAKE) fuzz-smoke FUZZTIME=10s

# Packages with a single Fuzz* target each, so -fuzz=Fuzz is unambiguous.
FUZZ_PKGS = internal/vasm internal/tinyc internal/dpf internal/spec \
	internal/mips internal/sparc internal/alpha internal/exec/diff \
	internal/superblock
FUZZTIME ?= 10s

fuzz-smoke:
	@for pkg in $(FUZZ_PKGS); do \
		echo "fuzz $$pkg ($(FUZZTIME))"; \
		go test -run '^$$' -fuzz Fuzz -fuzztime $(FUZZTIME) ./$$pkg || exit 1; \
	done

# The full soak run the PR acceptance criteria describe (>=10^5 calls).
soak:
	go run -race ./cmd/cgbench -faults

# The vcoded codegen server, warm-cache snapshot on, lifecycle tracing
# served at /trace.  curl examples in README.md.
run-server:
	go run ./cmd/vcoded -addr :8753 -snapshot vcoded.snap -trace

# Mixed-tenant server soak under the race detector: an in-process vcoded
# with deterministic fault injection, every failure must come back typed,
# zero panics tolerated.
soak-server:
	go run -race ./cmd/cgbench -serve-soak -serve-calls 30000 -workers 8 -seed 7

# Crash/recovery soak: SIGKILL a real journaled vcoded child
# mid-checkpoint, over and over, under injected fsync/write faults and
# bit-flipped journal tails.  Every durably-acknowledged key must come
# back correct after each restart; cycles alternate shard counts so the
# resharding restore path runs too.
crash-soak:
	go run -race ./cmd/cgbench -crash-soak -crash-cycles 20 -seed 11

test:
	go test ./...

bench:
	go test -bench . -benchtime 1s .

# Machine-readable benchmark records: ns/generated-instruction for every
# backend, cache hit rate and calls/sec, plus a bounded telemetry summary
# (histogram summaries + top counters).  Also emits the lifecycle trace
# and annotated disassembly alongside, a second record
# ($(BENCH_OUT:.json=.batch.json)) with the batch-compile pipeline
# throughput, and a third ($(BENCH_OUT:.json=.serve.json)) with the
# vcoded server's end-to-end throughput and tail latency under the
# mixed-tenant fault-injected load.
#
# Artifact policy: only BENCH_baseline.json (the committed gate anchor)
# and the BENCH_latest.* records of the most recent run live in the repo
# root; per-PR copies are CI artifacts, not commits.
BENCH_OUT ?= BENCH_latest.json
bench-json:
	go run ./cmd/cgbench -cache -metrics -requests 50000 -iters 2000 \
		-trace $(BENCH_OUT:.json=.trace.json) -annotate $(BENCH_OUT:.json=.annotate.txt) \
		-json $(BENCH_OUT)
	go run ./cmd/cgbench -batch 256 -workers 8 \
		-json $(BENCH_OUT:.json=.batch.json)
	go run ./cmd/cgbench -serve-soak -serve-calls 8000 -workers 8 -seed 7 \
		-json $(BENCH_OUT:.json=.serve.json)
	go run ./cmd/cgbench -tier3 -metrics \
		-json $(BENCH_OUT:.json=.tier3.json)

# Benchmark-regression gate: the fresh records against the committed
# baseline, ±25% tolerance (serve latency gets a widened band inside
# benchdiff).  Exits nonzero on regression (CI fails red).
bench-gate: bench-json
	go run ./cmd/benchdiff -tolerance 0.25 BENCH_baseline.json \
		$(BENCH_OUT) $(BENCH_OUT:.json=.batch.json) $(BENCH_OUT:.json=.serve.json) \
		$(BENCH_OUT:.json=.tier3.json)

.PHONY: verify fuzz-smoke soak run-server soak-server crash-soak test bench bench-json bench-gate
