# The CI entry point (.github/workflows/ci.yml runs the same steps).
verify:
	go build ./...
	go vet ./...
	go test -race ./...
	go run ./cmd/cgbench -cache -requests 50000
	go run ./cmd/cgbench -faults -calls 30000
	$(MAKE) fuzz-smoke FUZZTIME=10s

# Packages with a single Fuzz* target each, so -fuzz=Fuzz is unambiguous.
FUZZ_PKGS = internal/vasm internal/tinyc internal/dpf internal/spec \
	internal/mips internal/sparc internal/alpha
FUZZTIME ?= 10s

fuzz-smoke:
	@for pkg in $(FUZZ_PKGS); do \
		echo "fuzz $$pkg ($(FUZZTIME))"; \
		go test -run '^$$' -fuzz Fuzz -fuzztime $(FUZZTIME) ./$$pkg || exit 1; \
	done

# The full soak run the PR acceptance criteria describe (>=10^5 calls).
soak:
	go run -race ./cmd/cgbench -faults

test:
	go test ./...

bench:
	go test -bench . -benchtime 1s .

# Machine-readable benchmark record: ns/generated-instruction for every
# backend, cache hit rate and calls/sec, plus a bounded telemetry summary
# (histogram summaries + top counters).  Also emits the lifecycle trace
# and annotated disassembly alongside, and a second record
# ($(BENCH_OUT:.json=.batch.json)) with the batch-compile pipeline
# throughput.  Override BENCH_OUT to name the artifacts per PR.
BENCH_OUT ?= BENCH_pr5.json
bench-json:
	go run ./cmd/cgbench -cache -metrics -requests 50000 -iters 2000 \
		-trace $(BENCH_OUT:.json=.trace.json) -annotate $(BENCH_OUT:.json=.annotate.txt) \
		-json $(BENCH_OUT)
	go run ./cmd/cgbench -batch 256 -workers 8 \
		-json $(BENCH_OUT:.json=.batch.json)

# Benchmark-regression gate: the fresh records against the committed
# baseline, ±25% tolerance.  Exits nonzero on regression (CI fails red).
bench-gate: bench-json
	go run ./cmd/benchdiff -tolerance 0.25 BENCH_baseline.json \
		$(BENCH_OUT) $(BENCH_OUT:.json=.batch.json)

.PHONY: verify fuzz-smoke soak test bench bench-json bench-gate
