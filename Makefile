# The CI entry point (.github/workflows/ci.yml runs the same steps).
verify:
	go build ./...
	go vet ./...
	go test -race ./...
	go run ./cmd/cgbench -cache -requests 50000

test:
	go test ./...

bench:
	go test -bench . -benchtime 1s .

.PHONY: verify test bench
